"""TPACF — two-point angular correlation function (cosmology).

Table 2: 536 source / 98 kernel lines, 96% of serial time in the
kernel.  Section 5.1 places TPACF in the top speedup group ("TPACF,
RPES, MRI-Q, MRI-FHD, and CP have low global access ratios and spend
most of their execution time performing computation or accessing
low-latency memories"), and Section 5.2's remark that careful thread
organization "reduces or eliminates conflicts in shared memory and
caches" applies to its per-thread histogram layout.

The measurement: for angular bins b, count galaxy pairs whose angular
separation falls in b.  The CUDA port computes dot products between
unit vectors and *binary-searches* a precomputed table of bin-edge
cosines held in constant memory (avoiding an acos per pair — the
classic TPACF trick), then increments a **private per-thread histogram
in shared memory**; the GeForce 8800 GTX (compute 1.0) has no atomic
operations, so per-block histograms are written to global memory and
reduced on the host.  Private histograms are laid out bin-major so
that each thread's counters occupy its own bank — concurrent updates
never conflict regardless of which bins the threads hit.

One kernel call computes one (set1-chunk x set2) tile; the standard
DD / DR / RR estimator needs three passes, all included.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

NBINS = 32


def make_bin_edges(nbins: int = NBINS) -> np.ndarray:
    """Cosines of log-spaced angular bin edges, descending.

    ``edges[i]`` is the cosine of the i-th bin's lower angle; a pair
    with ``dot >= edges[i]`` falls in a bin <= i.
    """
    angles = np.logspace(np.log10(0.01), np.log10(1.0), nbins)  # radians
    return np.cos(angles).astype(np.float32)


def histogram_pairs_reference(p1: np.ndarray, p2: np.ndarray,
                              edges: np.ndarray,
                              same_set: bool) -> np.ndarray:
    """NumPy ground truth: bin all pairs between two point sets."""
    dots = np.clip(p1 @ p2.T, -1.0, 1.0).astype(np.float32)
    if same_set:
        iu = np.triu_indices(len(p1), k=1)
        dots = dots[iu]
    else:
        dots = dots.ravel()
    # bin = number of edges strictly greater than the dot product
    # (edges are descending cosines); K == NBINS clamps into the last bin
    bins = np.searchsorted(-edges, -dots, side="left")
    return np.bincount(np.minimum(bins, NBINS - 1),
                       minlength=NBINS).astype(np.int64)


def tpacf_kernel():
    """Histogram one tile of pair separations.

    Threads each own one point of set 1; the kernel loops over a
    staged chunk of set 2 in shared memory.  ``same_set`` skips the
    lower triangle so each unordered pair is counted once.
    """

    @kernel("tpacf_histogram", regs_per_thread=18,
            notes="private shared-memory histograms, binary search "
                  "over constant-memory bin edges",
            # indexes shared histograms by raw per-block thread count
            # and reads hist.data directly, bypassing the lane offsets
            batchable=False)
    def tpacf(ctx, x1, y1, z1, x2, y2, z2, edges, block_hists,
              n1, n2, chunk, same_set):
        t = ctx.nthreads
        i = ctx.global_tid()
        ctx.address_ops(3)
        # private histograms, bin-major: counter (bin, tid) lives at
        # word bin*t + tid, so the 16 threads of a half-warp always
        # touch 16 distinct banks no matter which bins they hit
        hist = ctx.shared_alloc((NBINS, t), np.int32, "hist")
        # staging buffers for the set-2 chunk
        sx = ctx.shared_alloc(chunk, np.float32, "sx")
        sy = ctx.shared_alloc(chunk, np.float32, "sy")
        sz = ctx.shared_alloc(chunk, np.float32, "sz")
        # bin edges staged in shared memory: the binary search reads
        # *divergent* addresses, which would serialize in the constant
        # cache (one broadcast per distinct word); shared memory only
        # pays bank conflicts
        sedges = ctx.shared_alloc(NBINS, np.float32, "edges")
        with ctx.masked(ctx.tid < NBINS):
            ctx.st_shared(sedges, ctx.tid,
                          ctx.ld_const(edges, np.minimum(ctx.tid,
                                                         NBINS - 1)))
        ctx.sync()

        valid = i < n1
        safe_i = np.where(valid, i, 0)
        with ctx.masked(valid):
            px = ctx.ld_global(x1, safe_i)
            py = ctx.ld_global(y1, safe_i)
            pz = ctx.ld_global(z1, safe_i)

        zero = np.zeros(t, dtype=np.int64)
        for start in range(0, int(n2), int(chunk)):
            width = min(int(chunk), int(n2) - start)
            # cooperative staging of the chunk
            with ctx.masked(ctx.tid < width):
                cx = ctx.ld_global(x2, np.minimum(start + ctx.tid, n2 - 1))
                cy = ctx.ld_global(y2, np.minimum(start + ctx.tid, n2 - 1))
                cz = ctx.ld_global(z2, np.minimum(start + ctx.tid, n2 - 1))
                ctx.st_shared(sx, ctx.tid, cx)
                ctx.st_shared(sy, ctx.tid, cy)
                ctx.st_shared(sz, ctx.tid, cz)
            ctx.sync()
            for j in range(width):
                qx = ctx.ld_shared(sx, zero + j)     # broadcast
                qy = ctx.ld_shared(sy, zero + j)
                qz = ctx.ld_shared(sz, zero + j)
                dot = ctx.fmul(px, qx)
                dot = ctx.fma(py, qy, dot)
                dot = ctx.fma(pz, qz, dot)
                # binary search for K = #(edges > dot) over the 32
                # descending edges: 6 predicated steps, no divergence
                lo = np.zeros(t, dtype=np.int64)
                for step in (32, 16, 8, 4, 2, 1):
                    mid = np.minimum(lo + step, NBINS)
                    edge = ctx.ld_shared(sedges, mid - 1)
                    take = (edge > dot) & (mid > lo)
                    lo = ctx.select(take, mid, lo)
                bin_idx = np.minimum(lo, NBINS - 1)
                pair_ok = valid
                if same_set:
                    pair_ok = pair_ok & ((start + j) > i)
                with ctx.masked(pair_ok):
                    slot = bin_idx * t + ctx.tid
                    count = ctx.ld_shared(hist, slot)
                    ctx.st_shared(hist, slot, count + 1)
                ctx.loop_tail(1)
            ctx.sync()
            ctx.loop_tail(1)

        # reduce the block's private histograms into global memory
        # (no atomics on compute 1.0: one slot per block and bin)
        with ctx.masked(ctx.tid < NBINS):
            total = np.zeros(t, dtype=np.int64)
            my_bin = np.minimum(ctx.tid, NBINS - 1)
            for lane in range(t):
                total = total + hist.data[my_bin * t + lane]
            ctx.address_ops(t // 8)    # tree reduction cost (log passes)
            out = ctx.block_linear * NBINS + ctx.tid
            ctx.st_global(block_hists, np.minimum(
                out, block_hists.size - 1), total)

    return tpacf


class Tpacf(Application):
    """Two-point angular correlation function with DD/DR/RR passes."""

    name = "tpacf"
    description = "angular correlation histograms of galaxy catalogs"
    kernel_fraction = 0.96            # Table 2: 96%
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=0.75)

    BLOCK = 64      # 32 bins x 64 threads x 4 B histograms = 8 KB shared
    CHUNK = 64

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"ndata": 4096, "nrandom": 4096}
        return {"ndata": 192, "nrandom": 128}

    def _points(self, n: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        v = rng.standard_normal((n, 3))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        return v.astype(np.float32)

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        nd, nr = int(workload["ndata"]), int(workload["nrandom"])
        data = self._points(nd, 11)
        rand = self._points(nr, 13)
        edges = make_bin_edges()
        return {
            "DD": histogram_pairs_reference(data, data, edges, True),
            "DR": histogram_pairs_reference(data, rand, edges, False),
            "RR": histogram_pairs_reference(rand, rand, edges, True),
        }

    def lint_targets(self):
        from ..analysis.targets import LintTarget, carr, garr
        n1, n2 = 192, 128
        grid = -(-n1 // self.BLOCK)
        return [LintTarget(
            tpacf_kernel(), (grid,), (self.BLOCK,),
            (garr("x1", n1), garr("y1", n1), garr("z1", n1),
             garr("x2", n2), garr("y2", n2), garr("z2", n2),
             carr("edges", NBINS),
             garr("block_hists", grid * NBINS, "int32"),
             n1, n2, self.CHUNK, True))]

    def _pass(self, dev, kern, p1, p2, edges_c, same_set, functional, tb):
        n1, n2 = len(p1), len(p2)
        d1 = [dev.to_device(p1[:, k].copy(), f"s1_{k}") for k in range(3)]
        d2 = [dev.to_device(p2[:, k].copy(), f"s2_{k}") for k in range(3)]
        grid = -(-n1 // self.BLOCK)
        d_hists = dev.alloc(grid * NBINS, np.int32, "block_hists")
        result = self.launch(
            kern, (grid,), (self.BLOCK,),
            (*d1, *d2, edges_c, d_hists, n1, n2, self.CHUNK, same_set),
            device=dev, functional=functional, trace_blocks=tb)
        hist = None
        if functional:
            hist = dev.from_device(d_hists).reshape(grid, NBINS) \
                .sum(axis=0).astype(np.int64)
        return result, hist

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nd, nr = int(workload["ndata"]), int(workload["nrandom"])
        dev = self._make_device(device)
        data = self._points(nd, 11)
        rand = self._points(nr, 13)
        edges_c = dev.to_constant(make_bin_edges(), "bin_edges")
        kern = tpacf_kernel()
        tb = int(workload.get("trace_blocks", 2))

        outputs = {}
        launches = []
        for label, p1, p2, same in (("DD", data, data, True),
                                    ("DR", data, rand, False),
                                    ("RR", rand, rand, True)):
            res, hist = self._pass(dev, kern, p1, p2, edges_c, same,
                                   functional, tb)
            launches.append(res)
            if functional:
                outputs[label] = hist
        return self._finish(workload, launches, dev, outputs)
