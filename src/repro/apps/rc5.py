"""RC5-72 — distributed.net brute-force key search.

Table 2: 1979 source / 218 kernel lines, >99% of serial time in the
kernel.  Section 5.1's instruction-set lesson lives here: "the
opposite effect, where the native instruction set must emulate
functionality, exists in RC-5: the GeForce 8800 lacks a modulus-shift
operation.  Performance of the code if a native modulus-shift were
available is estimated to be several times higher."

Each thread expands one candidate key through the RC5 key schedule
(3 * 26 data-dependent rotate-and-add mixing steps for RC5-32/12) and
encrypts the known plaintext block; a match against the known
ciphertext flags the key.  Every variable rotate on the GPU is
emulated as ``(x << r) | (x >> (32 - r))`` plus masking — four integer
instructions where the Opteron uses a single native ``rol``.  The
``native_rotate`` kernel variant models a hypothetical ISA with the
instruction, quantifying the paper's "several times higher" estimate
(the ablation benchmark).

The key schedule and cipher are implemented twice — once in vectorized
NumPy (reference) and once in the kernel DSL — and must agree exactly,
which doubles as a stringent integer-semantics test of the DSL.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

P32 = 0xB7E15163
Q32 = 0x9E3779B9
MASK32 = (1 << 32) - 1
ROUNDS = 12
T = 2 * (ROUNDS + 1)        # 26 subkeys
KEY_WORDS = 2               # 64-bit keys for the search demo


def _rotl(x: np.ndarray, r: np.ndarray) -> np.ndarray:
    """NumPy 32-bit rotate-left with vector shift amounts."""
    r = r & 31
    return ((x << r) | (x >> (32 - r).astype(np.int64) % 32)) & MASK32


def rc5_reference_encrypt(keys: np.ndarray, pt: Tuple[int, int]
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized RC5-32/12 over a batch of 64-bit keys.

    ``keys`` has shape (n, KEY_WORDS) of uint32-valued int64; returns
    the two ciphertext words for the fixed plaintext block.
    """
    n = keys.shape[0]
    L = keys.astype(np.int64).copy()
    S = np.empty((n, T), dtype=np.int64)
    S[:, 0] = P32
    for i in range(1, T):
        S[:, i] = (S[:, i - 1] + Q32) & MASK32

    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    i = j = 0
    for _ in range(3 * T):
        a = S[:, i] = _rotl((S[:, i] + a + b) & MASK32,
                            np.full(n, 3, dtype=np.int64))
        b = L[:, j] = _rotl((L[:, j] + a + b) & MASK32, (a + b) & MASK32)
        i = (i + 1) % T
        j = (j + 1) % KEY_WORDS

    x = np.full(n, pt[0], dtype=np.int64)
    y = np.full(n, pt[1], dtype=np.int64)
    x = (x + S[:, 0]) & MASK32
    y = (y + S[:, 1]) & MASK32
    for r in range(1, ROUNDS + 1):
        x = (_rotl(x ^ y, y) + S[:, 2 * r]) & MASK32
        y = (_rotl(y ^ x, x) + S[:, 2 * r + 1]) & MASK32
    return x, y


def rc5_search_kernel(native_rotate: bool = False):
    """Test one candidate key per thread against a known pair.

    ``native_rotate`` models a hypothetical modulus-shift instruction
    (1 IALU) instead of the 4-instruction emulation sequence.
    """

    def rotl(ctx, x, r):
        if native_rotate:
            ctx.address_ops(1)          # the hypothetical single rol
            rr = np.asarray(r) & 31
            return ((np.asarray(x) << rr)
                    | (np.asarray(x) >> ((32 - rr) % 32))) & MASK32
        rm = ctx.iand(r, 31)
        left = ctx.ishl(x, rm)
        right = ctx.ishr(x, (32 - rm) % 32)
        ctx.address_ops(1)              # 32 - r
        return ctx.iand(ctx.ior(left, right), MASK32)

    suffix = "native" if native_rotate else "emulated"

    @kernel(f"rc5_search_{suffix}", regs_per_thread=42,
            notes="register-resident key schedule; variable rotates "
                  + ("native (hypothetical ISA)" if native_rotate
                     else "emulated with shift/or"))
    def rc5(ctx, found, ct0, ct1, pt0, pt1, nkeys):
        tid = ctx.global_tid()
        ctx.address_ops(2)
        valid = tid < nkeys
        safe = np.where(valid, tid, 0)
        with ctx.masked(valid):
            # candidate keys are derived from the grid-wide thread id,
            # exactly like distributed.net work units — nothing is
            # transferred to the device but the work descriptor
            L = [ctx.iand(ctx.imul(safe, 2654435761), MASK32),
                 ctx.iand(ctx.ixor(safe, 0xDEADBEEF), MASK32)]
            # key schedule (S kept in registers, as the real port does)
            S = []
            s = np.full(ctx.nthreads, P32, dtype=np.int64)
            S.append(s)
            for _ in range(1, T):
                s = ctx.iand(ctx.iadd(s, Q32), MASK32)
                S.append(s)
            a = np.zeros(ctx.nthreads, dtype=np.int64)
            b = np.zeros(ctx.nthreads, dtype=np.int64)
            i = j = 0
            for _ in range(3 * T):
                mixed = ctx.iand(ctx.iadd(ctx.iadd(S[i], a), b), MASK32)
                a = S[i] = rotl(ctx, mixed, 3)
                mixed = ctx.iand(ctx.iadd(ctx.iadd(L[j], a), b), MASK32)
                b = L[j] = rotl(ctx, mixed, ctx.iand(ctx.iadd(a, b), MASK32))
                i = (i + 1) % T
                j = (j + 1) % KEY_WORDS

            x = ctx.iand(ctx.iadd(pt0, S[0]), MASK32)
            y = ctx.iand(ctx.iadd(pt1, S[1]), MASK32)
            for r in range(1, ROUNDS + 1):
                x = ctx.iand(ctx.iadd(rotl(ctx, ctx.ixor(x, y), y),
                                      S[2 * r]), MASK32)
                y = ctx.iand(ctx.iadd(rotl(ctx, ctx.ixor(y, x), x),
                                      S[2 * r + 1]), MASK32)

            hit = (x == ct0) & (y == ct1)
            with ctx.masked(hit):
                ctx.st_global(found, np.zeros(ctx.nthreads, dtype=np.int64),
                              tid + 1)

    return rc5


class Rc5(Application):
    """Exhaustive RC5 key search over a candidate window."""

    name = "rc5-72"
    description = "RC5 brute-force key search (distributed.net style)"
    kernel_fraction = 0.998           # Table 2: >99%
    # distributed.net's x86 core is hand-scheduled assembly sustaining
    # ~2.5 integer IPC with native rotates; relative to the GPU's
    # 1-op/slot emulated stream that is ~4x fewer issue slots per key.
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=0.25)

    BLOCK = 192       # 42 regs/thread -> one 192-thread block per SM

    PLAINTEXT = (0x12345678, 0x9ABCDEF0)

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"nkeys": 1 << 15, "secret_index": 31337}
        return {"nkeys": 512, "secret_index": 321}

    def _keys(self, nkeys: int) -> np.ndarray:
        base = np.arange(nkeys, dtype=np.int64)
        keys = np.empty((nkeys, KEY_WORDS), dtype=np.int64)
        keys[:, 0] = (base * 2654435761) & MASK32
        keys[:, 1] = (base ^ 0xDEADBEEF) & MASK32
        return keys

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        nkeys = int(workload["nkeys"])
        secret = int(workload["secret_index"])
        keys = self._keys(nkeys)
        ct = rc5_reference_encrypt(keys[secret:secret + 1], self.PLAINTEXT)
        x, y = rc5_reference_encrypt(keys, self.PLAINTEXT)
        hits = np.nonzero((x == ct[0][0]) & (y == ct[1][0]))[0]
        return {"found": np.array([hits[0] + 1], dtype=np.int64)}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr
        nkeys = 512
        grid = -(-nkeys // self.BLOCK)
        args = (garr("found", 1, "int64"), 0x11111111, 0x22222222,
                self.PLAINTEXT[0], self.PLAINTEXT[1], nkeys)
        return [
            LintTarget(rc5_search_kernel(False), (grid,), (self.BLOCK,),
                       args, note="emulated"),
            LintTarget(rc5_search_kernel(True), (grid,), (self.BLOCK,),
                       args, note="native"),
        ]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nkeys = int(workload["nkeys"])
        secret = int(workload["secret_index"])
        native = bool(workload.get("native_rotate", False))
        dev = self._make_device(device)
        keys = self._keys(nkeys)
        ct0, ct1 = rc5_reference_encrypt(keys[secret:secret + 1],
                                         self.PLAINTEXT)

        d_found = dev.alloc(1, np.int64, "found")
        kern = rc5_search_kernel(native)
        grid = -(-nkeys // self.BLOCK)
        result = self.launch(kern, (grid,), (self.BLOCK,),
                        (d_found, int(ct0[0]), int(ct1[0]),
                         self.PLAINTEXT[0], self.PLAINTEXT[1], nkeys),
                        device=dev, functional=functional,
                        trace_blocks=int(workload.get("trace_blocks", 2)))
        outputs = {}
        if functional:
            outputs["found"] = dev.from_device(d_found)
        return self._finish(workload, [result], dev, outputs)
