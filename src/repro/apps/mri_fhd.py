"""MRI-FHD — F^H d computation for non-Cartesian MRI reconstruction.

The companion kernel to MRI-Q (Stone et al., paper reference [25]):
for every voxel, accumulate the k-space data vector rotated by the
voxel's phase,

    FHd_r(x) += real(d(k)) * cos(arg) + imag(d(k)) * sin(arg)
    FHd_i(x) += imag(d(k)) * cos(arg) - real(d(k)) * sin(arg)
    arg       = 2*pi * k . x

Structurally identical to MRI-Q — one thread per voxel, trajectory and
sample data streamed through the broadcasting constant cache, sin/cos
on the SFUs — but with two more FMAs per sample, which is why its
speedup (316X kernel / 263X app in the paper) sits a notch below
MRI-Q's.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

#: samples per constant-memory chunk (5 arrays x 4 B x 1024 = 20 KB)
SAMPLES_PER_CHUNK = 1024


def mri_fhd_kernel():
    """Accumulate one chunk of k-space samples into (FHd_r, FHd_i)."""

    @kernel("mri_fhd", regs_per_thread=16,
            notes="trig on SFUs; sample data via constant cache")
    def mri_fhd(ctx, kx, ky, kz, dr, di, x, y, z, out_r, out_i, nsamples):
        i = ctx.global_tid()
        ctx.address_ops(3)
        px = ctx.ld_global(x, i)
        py = ctx.ld_global(y, i)
        pz = ctx.ld_global(z, i)
        acc_r = ctx.ld_global(out_r, i)
        acc_i = ctx.ld_global(out_i, i)
        zero = np.zeros(ctx.nthreads, dtype=np.int64)
        two_pi = np.float32(2.0 * np.pi)
        for s in range(nsamples):
            skx = ctx.ld_const(kx, zero + s)
            sky = ctx.ld_const(ky, zero + s)
            skz = ctx.ld_const(kz, zero + s)
            sdr = ctx.ld_const(dr, zero + s)
            sdi = ctx.ld_const(di, zero + s)
            arg = ctx.fmul(skx, px)
            arg = ctx.fma(sky, py, arg)
            arg = ctx.fma(skz, pz, arg)
            arg = ctx.fmul(arg, two_pi)
            c = ctx.sfu_cos(arg)
            s_ = ctx.sfu_sin(arg)
            acc_r = ctx.fma(sdr, c, acc_r)
            acc_r = ctx.fma(sdi, s_, acc_r)
            acc_i = ctx.fma(sdi, c, acc_i)
            acc_i = ctx.fma(ctx.fmul(sdr, np.float32(-1.0)), s_, acc_i)
            ctx.loop_tail(1)
        ctx.st_global(out_r, i, acc_r)
        ctx.st_global(out_i, i, acc_i)

    return mri_fhd


class MriFhd(Application):
    """Non-Cartesian MRI: F^H d vector computation."""

    name = "mri-fhd"
    description = "MRI reconstruction FHd vector (trig-dominated)"
    kernel_fraction = 0.9994          # paper: 316X kernel vs 263X app
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=0.8,
                               sfu_cycles=50.0)
    verify_rtol = 2e-3
    verify_atol = 1e-3

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"nvoxels": 32768, "nsamples": 2048}
        return {"nvoxels": 512, "nsamples": 96}

    def _data(self, nvoxels: int, nsamples: int):
        rng = np.random.default_rng(3141)
        traj = rng.uniform(-0.5, 0.5, (3, nsamples)).astype(np.float32)
        data = rng.standard_normal((2, nsamples)).astype(np.float32)
        pos = rng.uniform(-16.0, 16.0, (3, nvoxels)).astype(np.float32)
        return traj, data, pos

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        nv, ns = int(workload["nvoxels"]), int(workload["nsamples"])
        traj, data, pos = self._data(nv, ns)
        arg = 2.0 * np.pi * (traj.T @ pos)      # (ns, nv)
        c, s = np.cos(arg), np.sin(arg)
        dr, di = data[0][:, None], data[1][:, None]
        out_r = (dr * c + di * s).sum(axis=0)
        out_i = (di * c - dr * s).sum(axis=0)
        return {"FHd_r": out_r.astype(np.float32),
                "FHd_i": out_i.astype(np.float32)}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, carr, garr
        nv, ns = 512, 96
        return [LintTarget(
            mri_fhd_kernel(), (-(-nv // self.BLOCK),), (self.BLOCK,),
            (carr("kx", ns), carr("ky", ns), carr("kz", ns),
             carr("dr", ns), carr("di", ns),
             garr("x", nv), garr("y", nv), garr("z", nv),
             garr("FHd_r", nv), garr("FHd_i", nv), ns))]

    def module_schedule(self, workload: Dict[str, object],
                        device: Optional[Device] = None):
        """Declared launch sequence: one accumulation launch per
        constant-memory chunk, staged up front exactly like
        :meth:`MriQ.module_schedule`; FHd_r/FHd_i stay device-resident
        across the chunk loop."""
        from ..compile.module import ModuleSchedule
        from ..cuda.plan import LaunchPlan
        nv, ns = int(workload["nvoxels"]), int(workload["nsamples"])
        dev = self._make_device(device)
        traj, data, pos = self._data(nv, ns)

        d_x = dev.to_device(pos[0], "x")
        d_y = dev.to_device(pos[1], "y")
        d_z = dev.to_device(pos[2], "z")
        d_r = dev.alloc(nv, np.float32, "FHd_r")
        d_i = dev.alloc(nv, np.float32, "FHd_i")
        kern = mri_fhd_kernel()
        grid = -(-nv // self.BLOCK)
        tb = int(workload.get("trace_blocks", 2))

        sched = []
        for start in range(0, ns, SAMPLES_PER_CHUNK):
            stop = min(start + SAMPLES_PER_CHUNK, ns)
            c_kx = dev.to_constant(traj[0, start:stop], "kx")
            c_ky = dev.to_constant(traj[1, start:stop], "ky")
            c_kz = dev.to_constant(traj[2, start:stop], "kz")
            c_dr = dev.to_constant(data[0, start:stop], "dr")
            c_di = dev.to_constant(data[1, start:stop], "di")
            sched.append(LaunchPlan.build(
                kern, (grid,), (self.BLOCK,),
                (c_kx, c_ky, c_kz, c_dr, c_di, d_x, d_y, d_z, d_r, d_i,
                 stop - start),
                device=dev, functional=True, trace_blocks=tb))
            dev.reset_constant_space()

        def outputs() -> Dict[str, np.ndarray]:
            return {"FHd_r": dev.from_device(d_r),
                    "FHd_i": dev.from_device(d_i)}

        return ModuleSchedule(app=self.name, device=dev, steps=sched,
                              outputs=outputs)

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nv, ns = int(workload["nvoxels"]), int(workload["nsamples"])
        dev = self._make_device(device)
        traj, data, pos = self._data(nv, ns)

        d_x = dev.to_device(pos[0], "x")
        d_y = dev.to_device(pos[1], "y")
        d_z = dev.to_device(pos[2], "z")
        d_r = dev.alloc(nv, np.float32, "FHd_r")
        d_i = dev.alloc(nv, np.float32, "FHd_i")
        kern = mri_fhd_kernel()
        grid = -(-nv // self.BLOCK)

        launches = []
        for start in range(0, ns, SAMPLES_PER_CHUNK):
            stop = min(start + SAMPLES_PER_CHUNK, ns)
            c_kx = dev.to_constant(traj[0, start:stop], "kx")
            c_ky = dev.to_constant(traj[1, start:stop], "ky")
            c_kz = dev.to_constant(traj[2, start:stop], "kz")
            c_dr = dev.to_constant(data[0, start:stop], "dr")
            c_di = dev.to_constant(data[1, start:stop], "di")
            launches.append(self.launch(
                kern, (grid,), (self.BLOCK,),
                (c_kx, c_ky, c_kz, c_dr, c_di, d_x, d_y, d_z, d_r, d_i,
                 stop - start),
                device=dev, functional=functional,
                trace_blocks=int(workload.get("trace_blocks", 2))))
            dev.reset_constant_space()

        outputs = {}
        if functional:
            outputs["FHd_r"] = dev.from_device(d_r)
            outputs["FHd_i"] = dev.from_device(d_i)
        return self._finish(workload, launches, dev, outputs)
