"""Registry of the ported application suite (paper Tables 2 and 3).

``SUITE`` maps the paper's application names to their implementations;
:func:`get_app` instantiates one, and :func:`suite_names` lists them in
the paper's Table 2 order.  The matrix-multiplication study of
Section 4 is included under ``"matmul"`` (the paper lists it in
Table 3 "for comparison").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from .base import Application
from .matmul import MatMul
from .h264 import H264
from .lbm import Lbm
from .rc5 import Rc5
from .fem import Fem
from .rpes import Rpes
from .pns import Pns
from .saxpy import Saxpy
from .tpacf import Tpacf
from .fdtd import Fdtd
from .mri_q import MriQ
from .mri_fhd import MriFhd
from .cp import CoulombicPotential

#: Table 2 order.
SUITE: Dict[str, Type[Application]] = {
    "h264": H264,
    "lbm": Lbm,
    "rc5-72": Rc5,
    "fem": Fem,
    "rpes": Rpes,
    "pns": Pns,
    "saxpy": Saxpy,
    "tpacf": Tpacf,
    "fdtd": Fdtd,
    "mri-q": MriQ,
    "mri-fhd": MriFhd,
    "cp": CoulombicPotential,
}

#: Table 3 adds matmul "for comparison".
ALL_APPS: Dict[str, Type[Application]] = {"matmul": MatMul, **SUITE}


def suite_names() -> List[str]:
    """Application names in the paper's Table 2 order."""
    return list(SUITE)


def app_names() -> List[str]:
    """Every registered application, matmul included."""
    return list(ALL_APPS)


def get_app(name: str, spec: DeviceSpec = DEFAULT_DEVICE) -> Application:
    """Instantiate an application by its paper name."""
    try:
        cls = ALL_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(ALL_APPS)}"
        ) from None
    return cls(spec)


def iter_apps(names: Iterable[str] = None,
              spec: DeviceSpec = DEFAULT_DEVICE):
    """Yield instantiated applications (default: the full Table 2 suite)."""
    for name in (names if names is not None else suite_names()):
        yield get_app(name, spec)
