"""Application framework: workloads, runs and Amdahl accounting.

Every application in the paper's suite (Table 2/3) is implemented as an
:class:`Application` subclass providing

* a NumPy *reference* implementation (functional ground truth),
* one or more DSL *kernels* executed through :func:`repro.cuda.launch`,
* ``default_workload`` sizes (a small ``test`` size that runs fully
  functionally, and a ``full`` size for performance analysis),
* the CPU-baseline cost parameters the paper used for that app
  (SIMD/fast-math toggles, cache behaviour).

An :class:`AppRun` aggregates the launches of one execution and derives
the paper's Table 3 columns:

* *GPU kernel time* — analytical estimates summed over launches (and
  multiplied by ``time_steps_scale`` for iterative solvers where we
  execute a few representative steps of a longer simulation);
* *CPU kernel time* — the Opteron model applied to the same traces;
* *kernel speedup* — their ratio;
* *application speedup* — Amdahl's law with the app's kernel-time
  fraction (Table 2's "% execution in kernel") and the measured
  host<->device transfer time, reproducing e.g. FDTD's 1.2X ceiling
  from its 16.4% kernel fraction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..arch.device import DeviceSpec, DEFAULT_DEVICE
from ..cuda.launch import LaunchResult
from ..cuda.memory import Device
from ..sim.cpumodel import CpuCostParams, CpuSpec, CpuTimeEstimate, estimate_cpu_time
from ..sim.timing import KernelTimeEstimate, estimate_kernel_time
from ..trace.trace import KernelTrace


@dataclass
class AppRun:
    """One execution of an application on the simulated device."""

    app: str
    workload: Dict[str, object]
    launches: List[LaunchResult]
    device: Device
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    cpu_params: CpuCostParams = field(default_factory=CpuCostParams)
    kernel_fraction: float = 0.99
    time_steps_scale: float = 1.0
    #: the :class:`~repro.compile.module.CompiledModule` behind a
    #: :meth:`Application.run_module` execution, else ``None``
    module: Optional[object] = None

    # ------------------------------------------------------------------
    # GPU side
    # ------------------------------------------------------------------
    @property
    def merged_trace(self) -> KernelTrace:
        merged = KernelTrace()
        for l in self.launches:
            merged.merge(l.trace)
        return merged

    def kernel_estimates(self) -> List[KernelTimeEstimate]:
        return [estimate_kernel_time(l) for l in self.launches]

    @property
    def gpu_kernel_seconds(self) -> float:
        return sum(e.seconds for e in self.kernel_estimates()) \
            * self.time_steps_scale

    @property
    def gpu_gflops(self) -> float:
        secs = self.gpu_kernel_seconds
        flops = self.merged_trace.flops * self.time_steps_scale
        return flops / secs / 1e9 if secs > 0 else 0.0

    @property
    def transfer_seconds(self) -> float:
        return self.device.transfer_seconds()

    @property
    def bottleneck(self) -> str:
        """Dominant bottleneck across launches, weighted by time."""
        totals: Dict[str, float] = {}
        for e in self.kernel_estimates():
            totals[e.bound] = totals.get(e.bound, 0.0) + e.seconds
        return max(totals, key=totals.get) if totals else "n/a"

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    def cpu_estimate(self, cpu: Optional[CpuSpec] = None) -> CpuTimeEstimate:
        return estimate_cpu_time(self.merged_trace, self.cpu_params,
                                 cpu if cpu is not None else CpuSpec())

    @property
    def cpu_kernel_seconds(self) -> float:
        return self.cpu_estimate().seconds * self.time_steps_scale

    # ------------------------------------------------------------------
    # Paper Table 3 metrics
    # ------------------------------------------------------------------
    @property
    def kernel_speedup(self) -> float:
        gpu = self.gpu_kernel_seconds
        return self.cpu_kernel_seconds / gpu if gpu > 0 else 0.0

    @property
    def app_cpu_seconds(self) -> float:
        """Whole-application serial time implied by the kernel fraction."""
        f = max(min(self.kernel_fraction, 1.0), 1e-6)
        return self.cpu_kernel_seconds / f

    @property
    def app_gpu_seconds(self) -> float:
        """Whole-application time after porting: serial remainder +
        transfers + GPU kernel time."""
        serial = self.app_cpu_seconds * (1.0 - self.kernel_fraction)
        return serial + self.transfer_seconds + self.gpu_kernel_seconds

    @property
    def app_speedup(self) -> float:
        gpu = self.app_gpu_seconds
        return self.app_cpu_seconds / gpu if gpu > 0 else 0.0

    @property
    def gpu_exec_fraction(self) -> float:
        """Fraction of ported-app time spent executing on the GPU."""
        total = self.app_gpu_seconds
        return self.gpu_kernel_seconds / total if total > 0 else 0.0

    @property
    def transfer_fraction(self) -> float:
        total = self.app_gpu_seconds
        return self.transfer_seconds / total if total > 0 else 0.0

    @property
    def max_simultaneous_threads(self) -> int:
        """Table 3's "maximum simultaneously active threads" column."""
        best = 0
        for l in self.launches:
            occ = l.occupancy()
            best = max(best, min(occ.max_simultaneous_threads,
                                 l.total_threads))
        return best

    @property
    def registers_per_thread(self) -> int:
        return max((l.kernel.regs_per_thread for l in self.launches),
                   default=0)

    @property
    def smem_per_block(self) -> int:
        return max((l.smem_bytes_per_block for l in self.launches), default=0)

    def summary(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "max threads": self.max_simultaneous_threads,
            "regs/thread": self.registers_per_thread,
            "shared/block (B)": self.smem_per_block,
            "mem/compute ratio": round(self.merged_trace.memory_to_compute_ratio, 3),
            "GPU exec %": round(100 * self.gpu_exec_fraction, 1),
            "transfer %": round(100 * self.transfer_fraction, 1),
            "bottleneck": self.bottleneck,
            "kernel speedup": round(self.kernel_speedup, 1),
            "app speedup": round(self.app_speedup, 2),
        }


class Application(abc.ABC):
    """Base class for every ported application (see module docstring)."""

    #: unique registry key, e.g. ``"mri-q"``
    name: str = ""
    description: str = ""
    #: Table 2's "% of single-thread execution time spent in kernels"
    kernel_fraction: float = 0.99
    #: CPU-baseline parameters the paper's comparison used for this app
    cpu_params: CpuCostParams = CpuCostParams()
    #: default tolerances for :meth:`verify` (accumulation-heavy apps
    #: need looser float32 bounds)
    verify_rtol: float = 1e-4
    verify_atol: float = 1e-5
    #: execution backend for this app's launches — anything accepted by
    #: :func:`repro.cuda.executors.resolve_executor`.  ``"auto"`` picks
    #: the block-batched backend for functional sweeps of batchable
    #: kernels and the reference sequential backend otherwise.
    executor: object = "auto"

    def __init__(self, spec: DeviceSpec = DEFAULT_DEVICE) -> None:
        self.spec = spec

    # -- interface ------------------------------------------------------
    @abc.abstractmethod
    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        """Workload parameters; ``scale`` is ``"test"`` (small, fully
        functional) or ``"full"`` (paper-scale, trace-sampled)."""

    @abc.abstractmethod
    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        """Pure NumPy ground-truth implementation."""

    @abc.abstractmethod
    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        """Execute the ported kernels on the simulated device."""

    def lint_targets(self) -> List["LintTarget"]:
        """Representative kernel launches for the static analyzer
        (:mod:`repro.analysis`).  Geometries should be small but
        structurally faithful: same tile shapes, same index math, just
        fewer blocks.  Apps that return ``[]`` are skipped by the
        linter."""
        return []

    def module_schedule(self, workload: Dict[str, object],
                        device: Optional[Device] = None):
        """Declare this app's launch sequence as a
        :class:`~repro.compile.module.ModuleSchedule` for whole-
        application AOT execution: allocate/upload the device arrays,
        build every :class:`~repro.cuda.plan.LaunchPlan` up front
        (plan construction is side-effect-free), wrap host logic
        between launches in ``HostStep`` entries, and return the
        schedule — or ``None`` (the default) when the app has no
        multi-launch structure worth fusing; :meth:`run_module` then
        falls back to :meth:`run`."""
        return None

    def run_module(self, workload: Optional[Dict[str, object]] = None,
                   device: Optional[Device] = None,
                   policy=None) -> AppRun:
        """Execute through the whole-application AOT module layer
        (:mod:`repro.compile.module`): capture the declared launch
        sequence, fuse what the R7 dataflow allows, replay traces for
        repeated launch configurations, and fall back per launch when
        fusion is refused.  Apps without a :meth:`module_schedule`
        run the ordinary functional path — the module layer is always
        transparent with respect to outputs."""
        wl = workload if workload is not None \
            else self.default_workload("test")
        schedule = self.module_schedule(wl, device)
        if schedule is None:
            return self.run(wl, device=device, functional=True)
        from ..compile.module import CompiledModule
        module = CompiledModule(schedule, policy=policy)
        launches = module.execute()
        outputs = schedule.outputs() if schedule.outputs else {}
        run = self._finish(wl, launches, schedule.device, outputs,
                           time_steps_scale=schedule.time_steps_scale)
        run.module = module
        return run

    # -- helpers --------------------------------------------------------
    def launch(self, kern, grid, block, args=(), executor=None,
               **kwargs) -> LaunchResult:
        """Launch ``kern`` through the staged plan pipeline using the
        app's configured backend (``executor=`` overrides per call)."""
        from ..cuda.plan import LaunchPlan
        plan = LaunchPlan.build(kern, grid, block, args=args, **kwargs)
        return plan.execute(self.executor if executor is None else executor)

    def _make_device(self, device: Optional[Device]) -> Device:
        return device if device is not None else Device(self.spec)

    def _finish(self, workload, launches, device, outputs,
                time_steps_scale: float = 1.0) -> AppRun:
        return AppRun(
            app=self.name,
            workload=workload,
            launches=launches,
            device=device,
            outputs=outputs,
            cpu_params=self.cpu_params,
            kernel_fraction=self.kernel_fraction,
            time_steps_scale=time_steps_scale,
        )

    def verify(self, workload: Optional[Dict[str, object]] = None,
               rtol: Optional[float] = None,
               atol: Optional[float] = None) -> AppRun:
        """Run functionally on a test workload and check every output
        against the NumPy reference.  Returns the run for inspection."""
        wl = workload or self.default_workload("test")
        rtol = self.verify_rtol if rtol is None else rtol
        atol = self.verify_atol if atol is None else atol
        run = self.run(wl, functional=True)
        ref = self.reference(wl)
        for key, expect in ref.items():
            got = run.outputs[key]
            np.testing.assert_allclose(
                got, expect, rtol=rtol, atol=atol,
                err_msg=f"{self.name}: output {key!r} mismatch")
        return run
