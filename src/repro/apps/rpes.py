"""RPES — Rys polynomial equation solver (quantum chemistry).

Table 2: 1104 source / 281 kernel lines, 99% of serial time in the
kernel.  Section 5.1 puts RPES in the top-speedup group: low global
access ratio, heavy floating-point computation (exponentials, divides,
square roots) per tiny input, thousands of independent integrals.

The computation: two-electron repulsion integrals over s-type Gaussian
primitives via the Rys/Boys formulation.  For primitives with
exponents (a, b, c, d) at centers (A, B, C, D):

    p = a + b,  q = c + d
    P = (aA + bB)/p,  Q = (cC + dD)/q
    Kab = exp(-a*b/p * |A-B|^2),  Kcd = exp(-c*d/q * |C-D|^2)
    T = p*q/(p+q) * |P-Q|^2
    (ab|cd) = 2*pi^2.5 / (p*q*sqrt(p+q)) * Kab * Kcd * F0(T)

F0 is the zeroth Boys function; both the kernel and the NumPy
reference evaluate it with the same branchless rational/asymptotic
approximation (validated against ``scipy.special.erf`` in the test
suite), so the two implementations agree to float32 precision.

Each thread computes one primitive quartet — an embarrassingly
parallel sweep with ~60 arithmetic instructions, three SFU ops and a
couple of divides per 4-float output, the profile that earns RPES its
~210X kernel speedup in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

TWO_PI_POW = 2.0 * np.pi ** 2.5

#: Abramowitz & Stegun 7.1.26 erf coefficients (|error| < 1.5e-7)
ERF_P = 0.3275911
ERF_A = (0.254829592, -0.284496736, 1.421413741,
         -1.453152027, 1.061405429)
#: below this T the closed form is evaluated as its Taylor limit
F0_TINY = 1e-5


def erf_as_numpy(x: np.ndarray) -> np.ndarray:
    """A&S 7.1.26 rational erf for x >= 0, float32 (both sides use it)."""
    x = np.asarray(x, dtype=np.float32)
    t = (1.0 / (1.0 + np.float32(ERF_P) * x)).astype(np.float32)
    poly = np.float32(0.0)
    for c in reversed(ERF_A):
        poly = poly * t + np.float32(c)
    return (1.0 - poly * t * np.exp(-x * x)).astype(np.float32)


def boys_f0_numpy(t_val: np.ndarray) -> np.ndarray:
    """Boys F0(T) = 0.5*sqrt(pi/T)*erf(sqrt(T)), used by *both*
    implementations; the T->0 limit 1 - T/3 avoids the 0/0."""
    t_val = np.asarray(t_val, dtype=np.float32)
    ts = np.maximum(t_val, np.float32(F0_TINY))
    root = np.sqrt(ts).astype(np.float32)
    closed = (np.float32(0.5 * np.sqrt(np.pi)) / root * erf_as_numpy(root))
    limit = (1.0 - t_val / 3.0).astype(np.float32)
    return np.where(t_val < F0_TINY, limit, closed).astype(np.float32)


def rpes_reference(quartets: Dict[str, np.ndarray]) -> np.ndarray:
    """Vectorized NumPy evaluation of all quartets."""
    a, b, c, d = (quartets[k].astype(np.float32) for k in "abcd")
    ra, rb, rc, rd = (quartets["r" + k].astype(np.float32) for k in "abcd")
    p = a + b
    q = c + d
    ab2 = ((ra - rb) ** 2).sum(axis=1)
    cd2 = ((rc - rd) ** 2).sum(axis=1)
    kab = np.exp(-a * b / p * ab2)
    kcd = np.exp(-c * d / q * cd2)
    rp = (a[:, None] * ra + b[:, None] * rb) / p[:, None]
    rq = (c[:, None] * rc + d[:, None] * rd) / q[:, None]
    pq2 = ((rp - rq) ** 2).sum(axis=1)
    t_val = p * q / (p + q) * pq2
    pref = TWO_PI_POW / (p * q * np.sqrt(p + q))
    return (pref * kab * kcd * boys_f0_numpy(t_val)).astype(np.float32)


#: shells per batch; a block owns the (s1, s2) bra pair and its 256
#: threads cover the (s4, s3) ket pairs, so s1/s2/s4 are uniform within
#: a half-warp (constant-cache broadcasts) and only the s3-dependent
#: reads vary (served from a padded shared-memory stage).
NSHELLS = 16
SHELL_STRIDE = 5      # 4 payload floats padded to an odd stride


def rpes_kernel():
    """One primitive quartet per thread, shells decoded from ids."""

    @kernel("rpes_integral", regs_per_thread=24,
            notes="compute-dense: exp/rsqrt on SFUs, branchless Boys F0; "
                  "shell table in constant memory + padded shared stage",
            # Python loop bounds derive from scalar block coordinates
            batchable=False)
    def rpes(ctx, shells, out, nshells):
        ns = int(nshells)
        s1 = ctx.bx
        s2 = ctx.by
        s3 = ctx.tid % ns
        s4 = ctx.tid // ns            # uniform within a half-warp
        ctx.address_ops(4)

        # stage the shell table into shared memory with an odd stride,
        # so the s3-varying reads are bank-conflict free
        stage = ctx.shared_alloc(ns * SHELL_STRIDE, np.float32, "shells")
        with ctx.masked(ctx.tid < ns * 4):
            word = ctx.tid % 4
            shell = ctx.tid // 4
            v = ctx.ld_const(shells, shell * 4 + word)
            ctx.st_shared(stage, shell * SHELL_STRIDE + word, v)
        ctx.sync()

        def shell_const(sid_scalar):
            """Uniform shell read through the broadcasting const cache."""
            base = np.broadcast_to(np.int64(sid_scalar) * 4,
                                   (ctx.nthreads,))
            vals = [ctx.ld_const(shells, base + k) for k in range(4)]
            return vals[0], vals[1:4]

        def shell_shared(sid_vec):
            """Per-thread shell read from the padded shared stage."""
            base = sid_vec * SHELL_STRIDE
            ctx.address_ops(1)
            vals = [ctx.ld_shared(stage, base + k) for k in range(4)]
            return vals[0], vals[1:4]

        if True:
            a, ra = shell_const(s1)
            b, rb = shell_const(s2)
            c, rc = shell_shared(s3)
            d, rd = shell_shared(s4)

            p = ctx.fadd(a, b)
            q = ctx.fadd(c, d)
            ab2 = np.zeros(ctx.nthreads, dtype=np.float32)
            cd2 = np.zeros(ctx.nthreads, dtype=np.float32)
            for k in range(3):
                dab = ctx.fsub(ra[k], rb[k])
                ab2 = ctx.fma(dab, dab, ab2)
                dcd = ctx.fsub(rc[k], rd[k])
                cd2 = ctx.fma(dcd, dcd, cd2)
            inv_p = ctx.sfu_rcp(p)
            inv_q = ctx.sfu_rcp(q)
            kab = ctx.sfu_exp(ctx.fmul(ctx.fmul(
                ctx.fmul(a, b), inv_p), ctx.fmul(ab2, np.float32(-1.0))))
            kcd = ctx.sfu_exp(ctx.fmul(ctx.fmul(
                ctx.fmul(c, d), inv_q), ctx.fmul(cd2, np.float32(-1.0))))

            pq2 = np.zeros(ctx.nthreads, dtype=np.float32)
            for k in range(3):
                rp = ctx.fmul(ctx.fma(a, ra[k], ctx.fmul(b, rb[k])), inv_p)
                rq = ctx.fmul(ctx.fma(c, rc[k], ctx.fmul(d, rd[k])), inv_q)
                dpq = ctx.fsub(rp, rq)
                pq2 = ctx.fma(dpq, dpq, pq2)
            p_plus_q = ctx.fadd(p, q)
            t_val = ctx.fmul(ctx.fmul(ctx.fmul(p, q),
                                      ctx.sfu_rcp(p_plus_q)), pq2)

            # branchless Boys F0 via the A&S erf approximation
            ts = ctx.fmax(t_val, np.float32(F0_TINY))
            inv_root = ctx.sfu_rsqrt(ts)
            root = ctx.fmul(ts, inv_root)               # sqrt(T)
            et = ctx.sfu_rcp(ctx.fma(np.float32(ERF_P), root,
                                     np.float32(1.0)))
            poly = np.zeros(ctx.nthreads, dtype=np.float32)
            for coef in reversed(ERF_A):
                poly = ctx.fma(poly, et, np.float32(coef))
            gauss = ctx.sfu_exp(ctx.fmul(ctx.fmul(root, root),
                                         np.float32(-1.0)))
            erf_v = ctx.fsub(np.float32(1.0),
                             ctx.fmul(ctx.fmul(poly, et), gauss))
            closed = ctx.fmul(ctx.fmul(np.float32(0.5 * np.sqrt(np.pi)),
                                       inv_root), erf_v)
            limit = ctx.fma(t_val, np.float32(-1.0 / 3.0), np.float32(1.0))
            f0 = ctx.select(t_val < np.float32(F0_TINY), limit, closed)

            pref = ctx.fmul(
                np.float32(TWO_PI_POW),
                ctx.fmul(ctx.fmul(inv_p, inv_q),
                         ctx.sfu_rsqrt(p_plus_q)))
            val = ctx.fmul(ctx.fmul(pref, ctx.fmul(kab, kcd)), f0)
            out_idx = (np.int64(s1) * ns * ns * ns + np.int64(s2) * ns * ns
                       + s4 * ns + s3)
            ctx.address_ops(3)
            ctx.st_global(out, out_idx, val)

    return rpes


class Rpes(Application):
    """Batch evaluation of s-type two-electron repulsion integrals."""

    name = "rpes"
    description = "Rys/Boys two-electron integrals over Gaussian primitives"
    kernel_fraction = 0.99            # Table 2: 99%
    # scalar CPU with libm exp/sqrt — the original Fortran-style code
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=0.9,
                               sfu_cycles=45.0)
    verify_rtol = 2e-3
    verify_atol = 1e-5

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        # one batch = NSHELLS^4 = 65536 quartets; batches model
        # additional primitive contractions of the same shell structure
        if scale == "full":
            return {"batches": 4}
        return {"batches": 1}

    def _shells(self, batch: int) -> np.ndarray:
        """Shell table of one batch: (exponent, x, y, z) per shell."""
        rng = np.random.default_rng(4242 + batch)
        table = np.empty((NSHELLS, 4), dtype=np.float32)
        table[:, 0] = rng.uniform(0.2, 4.0, NSHELLS)
        table[:, 1:] = rng.uniform(-1.5, 1.5, (NSHELLS, 3))
        return table

    def _batch_quartets(self, batch: int) -> Dict[str, np.ndarray]:
        """Expand a shell table into per-quartet arrays in the kernel's
        output order: index = ((s1*ns + s2)*ns + s4)*ns + s3."""
        table = self._shells(batch)
        ns = NSHELLS
        s1, s2, s4, s3 = np.unravel_index(
            np.arange(ns ** 4), (ns, ns, ns, ns))
        data = {}
        for key, sid in (("a", s1), ("b", s2), ("c", s3), ("d", s4)):
            data[key] = table[sid, 0]
            data["r" + key] = table[sid, 1:]
        return data

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        batches = int(workload.get("batches", 1))
        vals = [rpes_reference(self._batch_quartets(b))
                for b in range(batches)]
        return {"integrals": np.concatenate(vals)}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, carr, garr
        ns = NSHELLS
        return [LintTarget(
            rpes_kernel(), (ns, ns), (self.BLOCK,),
            (carr("shells", ns * 4), garr("out", ns ** 4), ns))]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        batches = int(workload.get("batches", 1))
        dev = self._make_device(device)
        ns = NSHELLS
        kern = rpes_kernel()
        tb = int(workload.get("trace_blocks", 2))

        launches = []
        outs = []
        for b in range(batches):
            c_shells = dev.to_constant(self._shells(b).reshape(-1),
                                       f"shells[{b}]")
            d_out = dev.alloc(ns ** 4, np.float32, f"integrals[{b}]")
            launches.append(self.launch(kern, (ns, ns), (self.BLOCK,),
                                   (c_shells, d_out, ns), device=dev,
                                   functional=functional, trace_blocks=tb))
            if functional:
                outs.append(dev.from_device(d_out))
            dev.reset_constant_space()
        outputs = {}
        if functional:
            outputs["integrals"] = np.concatenate(outs)
        return self._finish(workload, launches, dev, outputs)
