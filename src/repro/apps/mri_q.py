"""MRI-Q — Q-matrix computation for non-Cartesian MRI reconstruction.

Stone et al.'s kernel (paper reference [25]): for every voxel of the
reconstruction volume, accumulate over all k-space samples

    Q_r(x) += |phi(k)|^2 * cos(2*pi * k . x)
    Q_i(x) += |phi(k)|^2 * sin(2*pi * k . x)

The paper singles the MRI applications out: "a substantial number of
executed operations are trigonometry functions; the SFUs execute these
much faster than even CPU fast math libraries.  This accounts for
approximately 30% of the speedup.  We also spent significant effort
improving the CPU versions (approximately 4.3X over the original
code)."  MRI-Q's 457X kernel / 431X application speedups are the
suite's maxima.

Implementation notes: one thread per voxel; the k-space trajectory
(kx, ky, kz, |phi|^2) streams through constant memory in chunks, so
every warp reads the same sample via the broadcasting constant cache —
the same structure as the real kernel.  Careful thread organization
means there are no shared-memory or cache conflicts ("most notably in
the MRI applications").
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

#: k-space samples per constant-memory chunk (4 arrays x 4 KB = 16 KB).
SAMPLES_PER_CHUNK = 1024


def mri_q_kernel():
    """Accumulate one chunk of k-space samples into (Qr, Qi)."""

    @kernel("mri_q", regs_per_thread=14,
            notes="trig on SFUs; k-space data via constant cache")
    def mri_q(ctx, kx, ky, kz, phi2, x, y, z, qr, qi, nsamples):
        i = ctx.global_tid()
        ctx.address_ops(3)
        px = ctx.ld_global(x, i)
        py = ctx.ld_global(y, i)
        pz = ctx.ld_global(z, i)
        acc_r = ctx.ld_global(qr, i)
        acc_i = ctx.ld_global(qi, i)
        zero = np.zeros(ctx.nthreads, dtype=np.int64)
        two_pi = np.float32(2.0 * np.pi)
        for s in range(nsamples):
            skx = ctx.ld_const(kx, zero + s)
            sky = ctx.ld_const(ky, zero + s)
            skz = ctx.ld_const(kz, zero + s)
            mag = ctx.ld_const(phi2, zero + s)
            arg = ctx.fmul(skx, px)
            arg = ctx.fma(sky, py, arg)
            arg = ctx.fma(skz, pz, arg)
            arg = ctx.fmul(arg, two_pi)
            acc_r = ctx.fma(mag, ctx.sfu_cos(arg), acc_r)
            acc_i = ctx.fma(mag, ctx.sfu_sin(arg), acc_i)
            ctx.loop_tail(1)
        ctx.st_global(qr, i, acc_r)
        ctx.st_global(qi, i, acc_i)

    return mri_q


class MriQ(Application):
    """Non-Cartesian MRI: Q-matrix precomputation."""

    name = "mri-q"
    description = "MRI reconstruction Q matrix (trig-dominated)"
    kernel_fraction = 0.9998          # Table 2: >99% (app speedup 431
    # of kernel 457 implies the serial remainder is ~0.02%)
    # Scalar CPU with fast-math sincos, already 4.3X-optimized by the
    # authors; a fast-math sin/cos pair still costs ~100 cycles on a K8.
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=0.8,
                               sfu_cycles=50.0)
    verify_rtol = 2e-3
    verify_atol = 1e-3

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"nvoxels": 32768, "nsamples": 2048}
        return {"nvoxels": 512, "nsamples": 96}

    def _data(self, nvoxels: int, nsamples: int):
        rng = np.random.default_rng(2718)
        traj = rng.uniform(-0.5, 0.5, (3, nsamples)).astype(np.float32)
        phi2 = rng.uniform(0.1, 1.0, nsamples).astype(np.float32)
        pos = rng.uniform(-16.0, 16.0, (3, nvoxels)).astype(np.float32)
        return traj, phi2, pos

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        nv, ns = int(workload["nvoxels"]), int(workload["nsamples"])
        traj, phi2, pos = self._data(nv, ns)
        arg = 2.0 * np.pi * (traj.T @ pos)          # (ns, nv)
        qr = (phi2[:, None] * np.cos(arg)).sum(axis=0)
        qi = (phi2[:, None] * np.sin(arg)).sum(axis=0)
        return {"Qr": qr.astype(np.float32), "Qi": qi.astype(np.float32)}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, carr, garr
        nv, ns = 512, 96
        return [LintTarget(
            mri_q_kernel(), (-(-nv // self.BLOCK),), (self.BLOCK,),
            (carr("kx", ns), carr("ky", ns), carr("kz", ns),
             carr("phi2", ns),
             garr("x", nv), garr("y", nv), garr("z", nv),
             garr("Qr", nv), garr("Qi", nv), ns))]

    def module_schedule(self, workload: Dict[str, object],
                        device: Optional[Device] = None):
        """Declared launch sequence: one accumulation launch per
        constant-memory chunk of the k-space trajectory.  All chunks
        are staged up front (plan arguments bind at build time;
        ``reset_constant_space`` between chunks keeps the 64 KB meter
        faithful to the per-launch path); Qr/Qi accumulate in place
        and stay device-resident across the chunk loop."""
        from ..compile.module import ModuleSchedule
        from ..cuda.plan import LaunchPlan
        nv, ns = int(workload["nvoxels"]), int(workload["nsamples"])
        dev = self._make_device(device)
        traj, phi2, pos = self._data(nv, ns)

        d_x = dev.to_device(pos[0], "x")
        d_y = dev.to_device(pos[1], "y")
        d_z = dev.to_device(pos[2], "z")
        d_qr = dev.alloc(nv, np.float32, "Qr")
        d_qi = dev.alloc(nv, np.float32, "Qi")
        kern = mri_q_kernel()
        grid = -(-nv // self.BLOCK)
        tb = int(workload.get("trace_blocks", 2))

        sched = []
        for start in range(0, ns, SAMPLES_PER_CHUNK):
            stop = min(start + SAMPLES_PER_CHUNK, ns)
            c_kx = dev.to_constant(traj[0, start:stop], "kx")
            c_ky = dev.to_constant(traj[1, start:stop], "ky")
            c_kz = dev.to_constant(traj[2, start:stop], "kz")
            c_p2 = dev.to_constant(phi2[start:stop], "phi2")
            sched.append(LaunchPlan.build(
                kern, (grid,), (self.BLOCK,),
                (c_kx, c_ky, c_kz, c_p2, d_x, d_y, d_z, d_qr, d_qi,
                 stop - start),
                device=dev, functional=True, trace_blocks=tb))
            dev.reset_constant_space()

        def outputs() -> Dict[str, np.ndarray]:
            return {"Qr": dev.from_device(d_qr),
                    "Qi": dev.from_device(d_qi)}

        return ModuleSchedule(app=self.name, device=dev, steps=sched,
                              outputs=outputs)

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nv, ns = int(workload["nvoxels"]), int(workload["nsamples"])
        dev = self._make_device(device)
        traj, phi2, pos = self._data(nv, ns)

        d_x = dev.to_device(pos[0], "x")
        d_y = dev.to_device(pos[1], "y")
        d_z = dev.to_device(pos[2], "z")
        d_qr = dev.alloc(nv, np.float32, "Qr")
        d_qi = dev.alloc(nv, np.float32, "Qi")
        kern = mri_q_kernel()
        grid = -(-nv // self.BLOCK)

        launches = []
        for start in range(0, ns, SAMPLES_PER_CHUNK):
            stop = min(start + SAMPLES_PER_CHUNK, ns)
            c_kx = dev.to_constant(traj[0, start:stop], "kx")
            c_ky = dev.to_constant(traj[1, start:stop], "ky")
            c_kz = dev.to_constant(traj[2, start:stop], "kz")
            c_p2 = dev.to_constant(phi2[start:stop], "phi2")
            launches.append(self.launch(
                kern, (grid,), (self.BLOCK,),
                (c_kx, c_ky, c_kz, c_p2, d_x, d_y, d_z, d_qr, d_qi,
                 stop - start),
                device=dev, functional=functional,
                trace_blocks=int(workload.get("trace_blocks", 2))))
            dev.reset_constant_space()

        outputs = {}
        if functional:
            outputs["Qr"] = dev.from_device(d_qr)
            outputs["Qi"] = dev.from_device(d_qi)
        return self._finish(workload, launches, dev, outputs)
