"""LBM — Lattice-Boltzmann fluid simulation (Figure 5's case study).

The paper uses LBM to illustrate two memory-system lessons:

* **Figure 5 (access patterns).**  The natural array-of-structures
  layout (all distributions of a cell adjacent) makes every load a
  large-stride, uncoalesced access.  Reorganizing to
  structure-of-arrays (one plane per distribution) restores coalescing
  for most directions, and staging/reading through **texture memory**
  absorbs the remaining +-1-offset misalignments: "kernel performance
  improves by 2.8X over global-only access by the use of texture
  memory" (Section 5.2).

* **Time-sliced simulation.**  Like FEM and FDTD, a kernel is invoked
  per time step so that all writes are visible before the next step —
  the whole lattice streams through DRAM every step.

* **Shared-memory capacity.**  The port keeps each thread's 9
  distributions in shared memory during collision; at 256
  threads/block that is 9.2 KB, so only one block fits per SM — LBM is
  "limited in the number of threads that can be run due to memory
  capacity constraints: shared memory" (Section 5.1).

We implement the standard D2Q9 BGK scheme on a periodic torus.  Three
kernel variants select the Figure 5 layouts: ``aos``, ``soa`` and
``texture``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

LAYOUTS = ("aos", "soa", "texture")

#: D2Q9 lattice: velocities and weights (rest, axis, diagonal).
EX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1], dtype=np.int64)
EY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1], dtype=np.int64)
W = np.array([4 / 9] + [1 / 9] * 4 + [1 / 36] * 4, dtype=np.float32)
Q = 9


def _equilibrium(rho, ux, uy):
    """D2Q9 BGK equilibrium distributions, float32 NumPy."""
    feq = np.empty((Q,) + np.shape(rho), dtype=np.float32)
    u2 = ux * ux + uy * uy
    for d in range(Q):
        eu = EX[d] * ux + EY[d] * uy
        feq[d] = (W[d] * rho
                  * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * u2))
    return feq.astype(np.float32)


def _initial_f(nx: int, ny: int) -> np.ndarray:
    """Shear-flow initial condition (deterministic)."""
    y = np.arange(ny, dtype=np.float32)[:, None]
    x = np.arange(nx, dtype=np.float32)[None, :]
    rho = np.ones((ny, nx), dtype=np.float32)
    ux = (0.05 * np.sin(2 * np.pi * y / ny)).astype(np.float32) \
        + np.zeros((ny, nx), np.float32)
    uy = (0.02 * np.cos(2 * np.pi * x / nx)).astype(np.float32) \
        + np.zeros((ny, nx), np.float32)
    return _equilibrium(rho, ux, uy)


def lbm_reference(nx: int, ny: int, steps: int, tau: float = 0.8):
    """NumPy stream-and-collide, the functional ground truth."""
    f = _initial_f(nx, ny)
    inv_tau = np.float32(1.0 / tau)
    for _ in range(steps):
        # streaming: pull from the upwind neighbour (periodic)
        fs = np.empty_like(f)
        for d in range(Q):
            fs[d] = np.roll(np.roll(f[d], EY[d], axis=0), EX[d], axis=1)
        rho = fs.sum(axis=0)
        ux = (EX[:, None, None] * fs).sum(axis=0) / rho
        uy = (EY[:, None, None] * fs).sum(axis=0) / rho
        feq = _equilibrium(rho.astype(np.float32), ux.astype(np.float32),
                           uy.astype(np.float32))
        f = (fs + (feq - fs) * inv_tau).astype(np.float32)
    return f


def lbm_step_kernel(layout: str):
    """One stream-and-collide step; ``layout`` picks the Figure 5 case."""
    if layout not in LAYOUTS:
        raise ValueError(f"unknown LBM layout {layout!r}; one of {LAYOUTS}")

    @kernel(f"lbm_step_{layout}", regs_per_thread=32,
            static_smem_bytes=0,
            notes=f"D2Q9 stream+collide, {layout} distribution layout")
    def step(ctx, f_in, f_out, nx, ny, inv_tau):
        n = nx * ny
        cell = ctx.global_tid()
        ctx.address_ops(4)
        x = cell % nx
        y = cell // nx
        # collision scratch: 9 distributions per thread in shared memory
        sh = ctx.shared_alloc((ctx.threads_per_block, Q), np.float32,
                              "fpriv")

        rho = np.zeros(ctx.nthreads, dtype=np.float32)
        mx = np.zeros(ctx.nthreads, dtype=np.float32)
        my = np.zeros(ctx.nthreads, dtype=np.float32)
        for d in range(Q):
            # pull streaming: upwind neighbour, periodic wrap
            xs = (x - EX[d]) % nx
            ys = (y - EY[d]) % ny
            ctx.address_ops(3)
            src_cell = ys * nx + xs
            if layout == "aos":
                fd = ctx.ld_global(f_in, src_cell * Q + d)
            elif layout == "soa":
                fd = ctx.ld_global(f_in, d * n + src_cell)
            else:  # texture path over the SoA layout
                fd = ctx.ld_tex(f_in, d * n + src_cell)
            ctx.st_shared(sh, ctx.tid * Q + d, fd)
            rho = ctx.fadd(rho, fd)
            if EX[d]:
                mx = ctx.fma(fd, np.float32(EX[d]), mx)
            if EY[d]:
                my = ctx.fma(fd, np.float32(EY[d]), my)
            ctx.loop_tail(1)
        ux = ctx.fdiv(mx, rho)
        uy = ctx.fdiv(my, rho)
        u2 = ctx.fma(ux, ux, ctx.fmul(uy, uy))
        for d in range(Q):
            eu = np.float32(EX[d]) * ux + np.float32(EY[d]) * uy
            ctx.address_ops(1)
            feq = ctx.fma(np.float32(4.5), ctx.fmul(eu, eu),
                          ctx.fma(np.float32(3.0), eu,
                                  ctx.fma(np.float32(-1.5), u2,
                                          np.float32(1.0))))
            feq = ctx.fmul(feq, ctx.fmul(np.float32(W[d]), rho))
            fd = ctx.ld_shared(sh, ctx.tid * Q + d)
            fnew = ctx.fma(ctx.fsub(feq, fd), inv_tau, fd)
            if layout == "aos":
                ctx.st_global(f_out, cell * Q + d, fnew)
            else:
                ctx.st_global(f_out, d * n + cell, fnew)
            ctx.loop_tail(1)

    return step


class Lbm(Application):
    """D2Q9 Lattice-Boltzmann on a periodic torus."""

    name = "lbm"
    description = "Lattice-Boltzmann fluid dynamics (time-sliced)"
    kernel_fraction = 0.998           # Table 2: >99%
    cpu_params = CpuCostParams(simd=False, miss_fraction=1.0, op_scale=0.8)
    verify_rtol = 1e-3
    verify_atol = 1e-4

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            # The port keeps SPEC LBM's cell-major (array-of-structures)
            # layout, as the paper's did — Figure 5 and the texture
            # variant quantify what the reorganizations would buy.
            return {"nx": 256, "ny": 256, "steps": 2, "total_steps": 500,
                    "layout": "aos"}
        return {"nx": 32, "ny": 16, "steps": 2, "total_steps": 2,
                "layout": "soa"}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        f = lbm_reference(int(workload["nx"]), int(workload["ny"]),
                          int(workload["steps"]))
        return {"f": f}

    def _pack(self, f: np.ndarray, layout: str) -> np.ndarray:
        """Host-side packing into the kernel's storage layout."""
        q, ny, nx = f.shape
        if layout == "aos":
            return np.ascontiguousarray(
                f.reshape(q, ny * nx).T).reshape(-1)     # cell-major
        return f.reshape(-1)                             # plane-major

    def _unpack(self, flat: np.ndarray, layout: str, nx: int, ny: int):
        if layout == "aos":
            return flat.reshape(ny * nx, Q).T.reshape(Q, ny, nx).copy()
        return flat.reshape(Q, ny, nx).copy()

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr, tarr
        nx, ny = 32, 16
        n = nx * ny * Q
        targets = []
        for layout in LAYOUTS:
            f_in = tarr("f_in", n) if layout == "texture" \
                else garr("f_in", n)
            targets.append(LintTarget(
                lbm_step_kernel(layout), (nx * ny // self.BLOCK,),
                (self.BLOCK,), (f_in, garr("f_out", n), nx, ny, 1.25),
                note=layout))
        return targets

    def module_schedule(self, workload: Dict[str, object],
                        device: Optional[Device] = None):
        """Declared launch sequence: ``steps`` stream-and-collide
        launches ping-ponging f_a/f_b (the swap is pure Python — no
        host step needed), except the texture layout whose inter-step
        D2D copy (re-binding the produced buffer as the next texture)
        is an explicit :class:`HostStep` fusion barrier."""
        from ..compile.module import HostStep, ModuleSchedule
        from ..cuda.plan import LaunchPlan
        nx, ny = int(workload["nx"]), int(workload["ny"])
        steps = int(workload["steps"])
        total = int(workload.get("total_steps", steps))
        layout = str(workload.get("layout", "soa"))
        dev = self._make_device(device)

        f0 = self._pack(_initial_f(nx, ny), layout)
        kern = lbm_step_kernel(layout)
        grid = (nx * ny // self.BLOCK,)
        tb = int(workload.get("trace_blocks", 2))
        inv_tau = np.float32(1.0 / 0.8)

        if layout == "texture":
            buf_a = dev.to_texture(f0, "f_a")
            buf_b = dev.alloc(f0.shape, np.float32, "f_b")
        else:
            buf_a = dev.to_device(f0, "f_a")
            buf_b = dev.alloc(f0.shape, np.float32, "f_b")

        sched: List = []
        src, dst = buf_a, buf_b
        for _ in range(steps):
            sched.append(LaunchPlan.build(
                kern, grid, (self.BLOCK,), (src, dst, nx, ny, inv_tau),
                device=dev, functional=True, trace_blocks=tb))
            if layout == "texture":
                sched.append(HostStep(
                    lambda s=src, d=dst: s.data.__setitem__(
                        slice(None), d.data),
                    note="texture re-bind copy"))
            else:
                src, dst = dst, src
        final = src

        def outputs() -> Dict[str, np.ndarray]:
            return {"f": self._unpack(final.data.copy(), layout, nx, ny)}

        return ModuleSchedule(app=self.name, device=dev, steps=sched,
                              outputs=outputs,
                              time_steps_scale=total / steps)

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nx, ny = int(workload["nx"]), int(workload["ny"])
        steps = int(workload["steps"])
        total = int(workload.get("total_steps", steps))
        layout = str(workload.get("layout", "soa"))
        dev = self._make_device(device)

        f0 = self._pack(_initial_f(nx, ny), layout)
        kern = lbm_step_kernel(layout)
        grid = (nx * ny // self.BLOCK,)
        tb = int(workload.get("trace_blocks", 2))
        inv_tau = np.float32(1.0 / 0.8)

        if layout == "texture":
            # ping-pong: read via texture binding, write to global, then
            # copy forward (the G80 cannot render to a bound texture)
            buf_a = dev.to_texture(f0, "f_a")
            buf_b = dev.alloc(f0.shape, np.float32, "f_b")
        else:
            buf_a = dev.to_device(f0, "f_a")
            buf_b = dev.alloc(f0.shape, np.float32, "f_b")

        launches: List = []
        src, dst = buf_a, buf_b
        for _ in range(steps):
            launches.append(self.launch(kern, grid, (self.BLOCK,),
                                   (src, dst, nx, ny, inv_tau),
                                   device=dev, functional=functional,
                                   trace_blocks=tb))
            if layout == "texture":
                # re-bind the produced buffer as the next step's texture
                src.data[:] = dst.data
            else:
                src, dst = dst, src

        final = src if layout == "texture" else src
        outputs = {}
        if functional:
            outputs["f"] = self._unpack(final.data.copy(), layout, nx, ny)
        return self._finish(workload, launches, dev, outputs,
                            time_steps_scale=total / steps)
