"""CP — Coulombic potential on a grid (Stone et al., molecular modeling).

Table 2 lists CP at 409 source / 47 kernel lines with >99% of serial
time in the kernel; Section 5.1 groups it with the "highest performance
gains" applications: low global-access ratio, execution dominated by
computation and low-latency memories, with atom data served from the
*constant cache*.

Each thread computes the electrostatic potential at one lattice point
of a 2D slice by iterating over all atoms; the atom coordinates and
charges live in constant memory, which broadcasts to the whole warp on
a cache hit (every thread reads the same atom at the same time — the
perfect constant-memory pattern).  Per atom the thread does two
distance FMAs, a reciprocal square root on the SFU pipe and an
accumulation FMA.

The paper's CPU baseline for the fast kernels was hand-optimized with
SIMD and fast math; we model SSE2 with `rsqrtps` + one Newton-Raphson
step (~10 cycles per rsqrt).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

#: Atoms processed per kernel launch so each (x, y, q) chunk fits in a
#: constant-memory window (matching the real CP's chunked zero-copy).
ATOMS_PER_CHUNK = 4096


def cp_kernel():
    """Accumulate potential contributions of one atom chunk."""

    @kernel("cp_potential", regs_per_thread=12,
            notes="atom data in constant memory; rsqrt on SFU")
    def cp(ctx, atom_x, atom_y, atom_q, grid_pot, natoms, width, spacing):
        gx = ctx.global_tid_x()
        gy = ctx.global_tid_y()
        ctx.address_ops(4)
        px = (gx * spacing).astype(np.float32)
        py = (gy * spacing).astype(np.float32)
        idx = gy * width + gx
        acc = ctx.ld_global(grid_pot, idx)      # accumulate across chunks
        zero = np.zeros(ctx.nthreads, dtype=np.int64)
        for a in range(natoms):
            ax = ctx.ld_const(atom_x, zero + a)
            ay = ctx.ld_const(atom_y, zero + a)
            q = ctx.ld_const(atom_q, zero + a)
            dx = ctx.fsub(px, ax)
            dy = ctx.fsub(py, ay)
            r2 = ctx.fma(dx, dx, ctx.fmul(dy, dy))
            rinv = ctx.sfu_rsqrt(r2)
            acc = ctx.fma(q, rinv, acc)
            ctx.loop_tail(1)
        ctx.st_global(grid_pot, idx, acc)

    return cp


class CoulombicPotential(Application):
    """Direct-summation Coulombic potential map (CP)."""

    name = "cp"
    description = "Coulombic potential grid from point charges"
    kernel_fraction = 0.9995         # Table 2: >99%
    # SSE2 CPU with rsqrtps+NR (~10 cycles) — the paper ensured the
    # fast kernels were compared against optimized CPU code.
    cpu_params = CpuCostParams(simd=True, miss_fraction=0.0, sfu_cycles=10.0)

    BLOCK = (16, 16)

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"width": 512, "height": 512, "natoms": 4096,
                    "spacing": 0.1}
        return {"width": 32, "height": 32, "natoms": 64, "spacing": 0.1}

    def _atoms(self, natoms: int, width: int, height: int, spacing: float):
        rng = np.random.default_rng(99)
        # keep atoms off the lattice points so r never vanishes
        ax = rng.uniform(0.13, (width - 1) * spacing, natoms).astype(np.float32)
        ay = rng.uniform(0.13, (height - 1) * spacing, natoms).astype(np.float32)
        # nudge atoms lying too close to any grid coordinate
        ax += np.float32(spacing * 0.37)
        ay += np.float32(spacing * 0.41)
        q = rng.uniform(-1.0, 1.0, natoms).astype(np.float32)
        return ax, ay, q

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        w, h = int(workload["width"]), int(workload["height"])
        natoms, sp = int(workload["natoms"]), float(workload["spacing"])
        ax, ay, q = self._atoms(natoms, w, h, sp)
        gx = (np.arange(w, dtype=np.float32) * sp)[None, :, None]
        gy = (np.arange(h, dtype=np.float32) * sp)[:, None, None]
        dx = gx - ax[None, None, :]
        dy = gy - ay[None, None, :]
        pot = (q[None, None, :] / np.sqrt(dx * dx + dy * dy)).sum(axis=2)
        return {"potential": pot.astype(np.float32)}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, carr, garr
        w, h, natoms = 32, 32, 64
        grid = (w // self.BLOCK[0], h // self.BLOCK[1])
        return [LintTarget(
            cp_kernel(), grid, self.BLOCK,
            (carr("atom_x", natoms), carr("atom_y", natoms),
             carr("atom_q", natoms), garr("grid_pot", w * h),
             natoms, w, np.float32(0.1)))]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        w, h = int(workload["width"]), int(workload["height"])
        natoms, sp = int(workload["natoms"]), float(workload["spacing"])
        dev = self._make_device(device)
        ax, ay, q = self._atoms(natoms, w, h, sp)
        d_pot = dev.alloc((h, w), np.float32, "potential")
        kern = cp_kernel()
        grid = (w // self.BLOCK[0], h // self.BLOCK[1])

        launches = []
        for start in range(0, natoms, ATOMS_PER_CHUNK):
            stop = min(start + ATOMS_PER_CHUNK, natoms)
            c_x = dev.to_constant(ax[start:stop], f"atom_x[{start}]")
            c_y = dev.to_constant(ay[start:stop], f"atom_y[{start}]")
            c_q = dev.to_constant(q[start:stop], f"atom_q[{start}]")
            launches.append(self.launch(
                kern, grid, self.BLOCK,
                (c_x, c_y, c_q, d_pot, stop - start, w, np.float32(sp)),
                device=dev, functional=functional,
                trace_blocks=int(workload.get("trace_blocks", 2))))
            # constant memory is reused between chunks
            dev.reset_constant_space()

        outputs = {}
        if functional:
            outputs["potential"] = dev.from_device(d_pot)
        return self._finish(workload, launches, dev, outputs)
