"""PNS — Petri net simulation.

Table 2: 322 source / 160 kernel lines, >99% serial time in the
kernel.  Section 5.1 uses PNS to contrast with the time-sliced codes:
"PNS does not have this issue because a separate simulation is
performed per thread", and names its limit: "LBM and PNS are limited
in the number of threads that can be run due to memory capacity
constraints: shared memory for the former, **global memory for the
latter**."

Each thread runs an independent stochastic simulation of a marked
Petri net (a token ring of P places with stochastic transition firing
driven by a per-thread LCG).  Every simulation owns a P-place marking
vector in **global memory**; the number of simulations resident on the
device is bounded by DRAM capacity, so large experiments run in
batches (the Table 3 "global memory capacity" bottleneck).  Markings
are stored simulation-minor (structure-of-arrays) so that the
per-thread state accesses of a half-warp coalesce.

The LCG and firing rule are deterministic, so the NumPy reference
reproduces the GPU results bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

#: LCG parameters (numerical recipes), 32-bit arithmetic
LCG_A = 1664525
LCG_C = 1013904223
MASK32 = (1 << 32) - 1


def pns_reference(nsims: int, places: int, steps: int) -> np.ndarray:
    """Vectorized NumPy simulation, bit-identical to the kernel."""
    marking = np.zeros((places, nsims), dtype=np.int64)
    marking[0, :] = places                     # all tokens on place 0
    state = np.arange(nsims, dtype=np.int64) * 2654435761 % (1 << 32)
    for _ in range(steps):
        state = (state * LCG_A + LCG_C) & MASK32
        src = (state >> 16) % places
        dst = (src + 1) % places
        tokens = marking[src, np.arange(nsims)]
        fire = tokens > 0
        amount = np.where(fire, 1 + ((state >> 8) & 1), 0)
        amount = np.minimum(amount, tokens)
        marking[src, np.arange(nsims)] -= amount
        marking[dst, np.arange(nsims)] += amount
    return marking


def pns_kernel(places: int, steps: int):
    """Run ``steps`` transitions of one Petri-net simulation per thread."""

    @kernel("pns_simulate", regs_per_thread=16,
            notes="independent per-thread simulations; per-simulation "
                  "marking state in global memory (capacity-bound)")
    def pns(ctx, marking, summary, nsims):
        sim = ctx.global_tid()
        ctx.address_ops(2)
        valid = sim < nsims
        safe = np.where(valid, sim, 0)
        # per-thread LCG seed (same mixing as the reference)
        state = ctx.iand(ctx.imul(safe, 2654435761), MASK32)
        with ctx.masked(valid):
            # initial marking is produced on the device: all tokens on
            # place 0 (no host->device transfer of simulation state)
            ctx.st_global(marking, safe, np.int64(places))
            for _ in range(steps):
                state = ctx.iand(
                    ctx.iadd(ctx.imul(state, LCG_A), LCG_C), MASK32)
                src = ctx.ishr(state, 16) % places
                ctx.address_ops(1)                  # modulus by places
                dst = (src + 1) % places
                ctx.address_ops(2)
                tokens = ctx.ld_global(marking, src * nsims + safe)
                fire = tokens > 0
                amount = ctx.select(fire, 1 + ((state >> 8) & 1), 0)
                ctx.address_ops(2)                  # shift/and for amount
                amount = ctx.merge(np.minimum(amount, tokens), amount)
                ctx.st_global(marking, src * nsims + safe,
                              tokens - amount)
                dst_tokens = ctx.ld_global(marking, dst * nsims + safe)
                ctx.st_global(marking, dst * nsims + safe,
                              dst_tokens + amount)
                ctx.loop_tail(1)
            # only a per-simulation summary statistic returns to the
            # host (the serial app aggregates firing statistics)
            final = ctx.ld_global(marking, safe)
            ctx.st_global(summary, safe, final)

    return pns


class Pns(Application):
    """Batched independent Petri-net simulations."""

    name = "pns"
    description = "stochastic Petri net simulation, one net per thread"
    kernel_fraction = 0.998           # Table 2: >99%
    # The serial baseline is a general Petri-net engine (linked-list
    # marking sets, transition lookups) that executes several times the
    # instructions of the GPU port's specialized inner loop; op_scale
    # above 1 reflects that, as the paper's CPU code was the original
    # application, not a hand-tightened LCG loop.
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.0, op_scale=3.0,
                               load_penalty_cycles=8.0)
    #: Table 3 names this resource, not a pipeline, as the limiter.
    bottleneck_note = "global memory capacity (simulations per batch)"

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            # each simulation owns `places` int64 slots -> batch size is
            # DRAM-capacity bound (the Table 3 bottleneck)
            return {"nsims": 1 << 16, "places": 64, "steps": 64}
        return {"nsims": 512, "places": 8, "steps": 16}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        marking = pns_reference(int(workload["nsims"]),
                                int(workload["places"]),
                                int(workload["steps"]))
        return {"marking": marking, "summary": marking[0].copy()}

    def max_sims_per_batch(self, places: int) -> int:
        """How many simulations fit in device memory at once."""
        bytes_per_sim = places * 8           # int64 markings
        budget = int(self.spec.dram_capacity_bytes * 0.9)
        return max(self.BLOCK, (budget // bytes_per_sim) // self.BLOCK
                   * self.BLOCK)

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr
        nsims, places, steps = 512, 8, 16
        return [LintTarget(
            pns_kernel(places, steps), (-(-nsims // self.BLOCK),),
            (self.BLOCK,),
            (garr("marking", places * nsims, "int64"),
             garr("summary", nsims, "int64"), nsims))]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nsims = int(workload["nsims"])
        places = int(workload["places"])
        steps = int(workload["steps"])
        dev = self._make_device(device)
        batch = min(nsims, self.max_sims_per_batch(places))
        kern = pns_kernel(places, steps)
        tb = int(workload.get("trace_blocks", 2))

        launches: List = []
        results = []
        summaries = []
        done = 0
        while done < nsims:
            width = min(batch, nsims - done)
            d_marking = dev.alloc((places, width), np.int64,
                                  f"marking[{done}]")
            d_summary = dev.alloc(width, np.int64, f"summary[{done}]")
            grid = -(-width // self.BLOCK)
            launches.append(self.launch(kern, (grid,), (self.BLOCK,),
                                   (d_marking, d_summary, width), device=dev,
                                   functional=functional, trace_blocks=tb))
            if functional:
                summaries.append(dev.from_device(d_summary))
                # untimed debug readback for verification only — the
                # real application never retrieves full markings
                results.append(d_marking.to_host().copy())
            done += width
            # the batch's state is freed before the next batch
            dev.free(d_summary)
            dev.free(d_marking)

        outputs = {}
        if functional:
            outputs["marking"] = np.concatenate(results, axis=1)
            outputs["summary"] = np.concatenate(summaries)
        return self._finish(workload, launches, dev, outputs)
