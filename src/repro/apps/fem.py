"""FEM — finite element method solver kernel (sparse matrix-vector).

Table 2 lists FEM at 1874 source / 146 kernel lines with 99% of serial
time in kernels; Section 5.1 groups it with the *time-sliced* codes
whose per-step kernels "must fetch from and store back the entire
system to global memory after performing only a small amount of
computation", and names it among the bandwidth-saturated applications.

The computational heart of an implicit FEM solver is the repeated
sparse matrix-vector product with the assembled stiffness matrix.  We
build a genuine unstructured problem — the stiffness (graph Laplacian)
matrix of a triangulated planar mesh whose node numbering is shuffled,
as mesh generators produce — store it in CSR, and run the classic
row-per-thread SpMV kernel:

* the column-index and value reads of a row are *sequential per
  thread* but strided across the half-warp -> uncoalesced;
* the ``x[col]`` gather is data-dependent -> uncoalesced;
* rows have different lengths -> warp divergence in the row loop.

This is exactly the access behaviour that kept FEM at ~11X in the
paper despite its huge thread count.  One kernel is launched per
solver iteration (time-sliced global synchronization).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun


def build_mesh_matrix(mesh_n: int, seed: int = 5
                      ) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Stiffness-like CSR matrix of a shuffled triangulated grid.

    A structured ``mesh_n x mesh_n`` grid is triangulated (right
    diagonals), the element graph's Laplacian is formed, and node ids
    are randomly permuted to reproduce the irregular numbering of real
    unstructured meshes.
    """
    n = mesh_n * mesh_n
    idx = np.arange(n).reshape(mesh_n, mesh_n)
    edges = []
    edges.append((idx[:, :-1].ravel(), idx[:, 1:].ravel()))     # horizontal
    edges.append((idx[:-1, :].ravel(), idx[1:, :].ravel()))     # vertical
    edges.append((idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()))  # diagonal
    rows = np.concatenate([e[0] for e in edges])
    cols = np.concatenate([e[1] for e in edges])

    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    rows, cols = perm[rows], perm[cols]

    w = rng.uniform(0.5, 2.0, rows.size).astype(np.float32)
    a = sp.coo_matrix((np.concatenate([w, w]),
                       (np.concatenate([rows, cols]),
                        np.concatenate([cols, rows]))), shape=(n, n)).tocsr()
    a.sum_duplicates()
    # Laplacian: diagonal = row sums (makes the operator well-scaled)
    diag = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(diag.astype(np.float32)) - a
    lap = lap.tocsr().astype(np.float32)
    x0 = rng.standard_normal(n).astype(np.float32)
    return lap, x0


def spmv_kernel():
    """CSR sparse matrix-vector product, one row per thread."""

    @kernel("fem_spmv", regs_per_thread=13,
            notes="row-per-thread CSR: strided and gather loads, "
                  "divergent row loop")
    def spmv(ctx, rowptr, colidx, values, x, y, nrows):
        row = ctx.global_tid()
        ctx.address_ops(2)
        valid = row < nrows
        safe_row = np.where(valid, row, 0)
        with ctx.masked(valid):
            start = ctx.ld_global(rowptr, safe_row)
            end = ctx.ld_global(rowptr, safe_row + 1)
            nnz = ctx.isub(end, start)
            acc = np.zeros(ctx.nthreads, dtype=np.float32)
            k = 0
            while ctx.any_active(k < nnz):
                with ctx.masked(k < nnz):
                    ptr = start + k
                    col = ctx.ld_global(colidx, ptr)     # strided
                    val = ctx.ld_global(values, ptr)     # strided
                    xv = ctx.ld_global(x, col)           # gather
                    acc = ctx.merge(ctx.fma(val, xv, acc), acc)
                    ctx.loop_tail(1)
                k += 1
            ctx.st_global(y, safe_row, acc)

    return spmv


class Fem(Application):
    """Finite element solver: unstructured-mesh SpMV iterations."""

    name = "fem"
    description = "FEM stiffness-matrix SpMV on an unstructured mesh"
    kernel_fraction = 0.99            # Table 2: 99%
    # the CPU SpMV is miss-bound on its gathers: ~10 extra cycles per
    # load (partial L2 locality after mesh renumbering)
    cpu_params = CpuCostParams(simd=False, miss_fraction=0.1, op_scale=0.8,
                               load_penalty_cycles=10.0)
    verify_rtol = 1e-3
    verify_atol = 1e-3

    BLOCK = 256

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"mesh_n": 256, "iterations": 2, "total_iterations": 100}
        return {"mesh_n": 16, "iterations": 2, "total_iterations": 2}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        a, x = build_mesh_matrix(int(workload["mesh_n"]))
        for _ in range(int(workload["iterations"])):
            x = (a @ x).astype(np.float32)
            x /= np.float32(max(np.abs(x).max(), 1e-20))  # power iteration
        return {"x": x}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr
        nrows, nnz = 512, 4096
        return [LintTarget(
            spmv_kernel(), (-(-nrows // self.BLOCK),), (self.BLOCK,),
            (garr("rowptr", nrows + 1, "int32"),
             garr("colidx", nnz, "int32"), garr("values", nnz),
             garr("x", nrows), garr("y", nrows), nrows))]

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        mesh_n = int(workload["mesh_n"])
        iters = int(workload["iterations"])
        total = int(workload.get("total_iterations", iters))
        dev = self._make_device(device)
        a, x0 = build_mesh_matrix(mesh_n)
        n = a.shape[0]

        d_rowptr = dev.to_device(a.indptr.astype(np.int32), "rowptr")
        d_colidx = dev.to_device(a.indices.astype(np.int32), "colidx")
        d_values = dev.to_device(a.data.astype(np.float32), "values")
        d_x = dev.to_device(x0, "x")
        d_y = dev.alloc(n, np.float32, "y")
        kern = spmv_kernel()
        grid = (-(-n // self.BLOCK),)
        tb = int(workload.get("trace_blocks", 2))

        launches = []
        for _ in range(iters):
            launches.append(self.launch(kern, grid, (self.BLOCK,),
                                   (d_rowptr, d_colidx, d_values, d_x, d_y,
                                    n),
                                   device=dev, functional=functional,
                                   trace_blocks=tb))
            if functional:
                # host-side normalization between SpMV launches (the
                # solver's scalar phase, part of the 1% serial time)
                y = d_y.data
                d_x.data[:] = y / max(np.abs(y).max(), 1e-20)
            else:
                d_x, d_y = d_y, d_x

        outputs = {}
        if functional:
            outputs["x"] = d_x.to_host().copy()
        return self._finish(workload, launches, dev, outputs,
                            time_steps_scale=total / iters)
