"""Matrix multiplication — the paper's running example (Section 4).

Four optimization stages, exactly as the paper develops them:

``naive``
    One thread per result element, dot product straight out of global
    memory (Figure 3(a)).  Inner loop: 2 global loads, 1 FMA, 2 index
    increments, loop bookkeeping — 8 instructions with 1 FMA, which is
    where the paper's "potential throughput of 43.2 GFLOPS" comes
    from.  The B access is coalesced; the A access (one row element
    broadcast across the half-warp) is not, so the kernel is bound by
    the memory system at ~10.6 GFLOPS.

``tiled``
    Figure 3(b): cooperative staging of square input tiles into shared
    memory, cutting global loads by the tile size (16x for 16x16) and
    making both load streams coalesce (for 16-wide tiles).  The inner
    loop still pays bookkeeping each iteration.

``tiled_unrolled``
    Section 4.3: the tile-wide inner loop is fully unrolled, deleting
    the branches, induction updates and per-iteration address
    arithmetic, and freeing one register (9 vs 10) by eliminating the
    induction variable.  FMA density rises to ~16/59 -> potential
    93.72 GFLOPS; achieved 91.14 in the paper.

``prefetch``
    Section 4.4: double-buffer the next tiles through registers.  Two
    extra registers (11) drop occupancy from 3 blocks/SM to 2, and the
    extra register moves cost issue slots; the paper measures 87.10
    GFLOPS — *slower* than plain tiled+unrolled, the paper's example
    of optimization interactions.

Tile sizes 4/8/12/16 reproduce Figure 4, including the 4x4 tiles that
underperform the naive kernel (half-empty warps + the 8-block limit +
uncoalesced 4-wide row loads) and the 12x12 tiles that need padded
arrays and non-integral warps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cuda import Device, DeviceArray, Kernel, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun

VARIANTS = ("naive", "tiled", "tiled_unrolled", "prefetch")
TILE_SIZES = (4, 8, 12, 16)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------

def naive_matmul_kernel() -> Kernel:
    """Figure 3(a): dot product from global memory, 10 regs/thread."""

    @kernel("mm_naive", regs_per_thread=10,
            notes="Figure 3(a); 1 FMA per 8 instructions")
    def mm_naive(ctx, A: DeviceArray, B: DeviceArray, C: DeviceArray, n: int):
        row = ctx.global_tid_y()
        col = ctx.global_tid_x()
        ctx.address_ops(4)            # indexA/indexB/indexC setup
        acc = np.zeros(ctx.nthreads, dtype=np.float32)
        row_base = row * n
        for k in range(n):
            a = ctx.ld_global(A, row_base + k)
            b = ctx.ld_global(B, k * n + col)
            acc = ctx.fma(a, b, acc)
            ctx.address_ops(2)        # indexA += 1; indexB += n
            ctx.loop_tail(1)          # k++, compare, branch
        ctx.st_global(C, row_base + col, acc)

    return mm_naive


def tiled_matmul_kernel(tile: int, unrolled: bool = False,
                        prefetch: bool = False) -> Kernel:
    """Figure 3(b) with optional Section 4.3 unrolling and Section 4.4
    register prefetching."""
    if prefetch and not unrolled:
        raise ValueError("the prefetch variant builds on the unrolled one")
    if unrolled:
        regs = 11 if prefetch else 9   # paper: unroll drops the induction
    else:                              # variable; prefetch adds two regs
        regs = 10
    suffix = f"{tile}x{tile}"
    if prefetch:
        name = f"mm_prefetch_{suffix}"
    elif unrolled:
        name = f"mm_tiled_unrolled_{suffix}"
    else:
        name = f"mm_tiled_{suffix}"

    @kernel(name, regs_per_thread=regs,
            notes=f"Figure 3(b), {suffix} tiles"
                  + (", fully unrolled inner loop" if unrolled else "")
                  + (", register prefetch of next tiles" if prefetch else ""))
    def mm_tiled(ctx, A: DeviceArray, B: DeviceArray, C: DeviceArray, n: int):
        As = ctx.shared_alloc((tile, tile), np.float32, "As")
        Bs = ctx.shared_alloc((tile, tile), np.float32, "Bs")
        tx, ty = ctx.tx, ctx.ty
        row = ctx.global_tid_y()
        col = ctx.global_tid_x()
        ctx.address_ops(6)            # base pointers for A, B, C tiles
        acc = np.zeros(ctx.nthreads, dtype=np.float32)
        smem_idx = ty * tile + tx
        ntiles = n // tile

        if prefetch:
            # initial loads of tile 0 into registers
            a_reg = ctx.ld_global(A, row * n + tx)
            b_reg = ctx.ld_global(B, ty * n + col)
            ctx.address_ops(2)

        for m in range(ntiles):
            if prefetch:
                ctx.st_shared(As, smem_idx, a_reg)
                ctx.st_shared(Bs, smem_idx, b_reg)
                ctx.sync()
                if m + 1 < ntiles:
                    # issue next tile's loads before computing
                    a_reg = ctx.ld_global(A, row * n + (m + 1) * tile + tx)
                    b_reg = ctx.ld_global(B, ((m + 1) * tile + ty) * n + col)
                    ctx.address_ops(2)
                    ctx.cvt(a_reg, np.float32)   # register staging moves
                    ctx.cvt(b_reg, np.float32)
            else:
                # after full unrolling the tile offsets become
                # constants, leaving one pointer bump per stream
                addr = 1 if unrolled else 2
                a = ctx.ld_global(A, row * n + m * tile + tx)
                ctx.address_ops(addr)
                ctx.st_shared(As, smem_idx, a)
                b = ctx.ld_global(B, (m * tile + ty) * n + col)
                ctx.address_ops(addr)
                ctx.st_shared(Bs, smem_idx, b)
                ctx.sync()

            for k in range(tile):
                av = ctx.ld_shared(As, ty * tile + k)
                bv = ctx.ld_shared(Bs, k * tile + tx)
                acc = ctx.fma(av, bv, acc)
                if not unrolled:
                    ctx.address_ops(1)   # shared-tile offset increment
                    ctx.loop_tail(1)     # k++, compare, branch
            ctx.sync()
            ctx.loop_tail(1)             # outer loop bookkeeping
        ctx.st_global(C, row * n + col, acc)

    return mm_tiled


def build_kernel(variant: str, tile: int = 16) -> Kernel:
    """Kernel factory keyed by the paper's variant names."""
    if variant == "naive":
        return naive_matmul_kernel()
    if variant == "tiled":
        return tiled_matmul_kernel(tile, unrolled=False)
    if variant == "tiled_unrolled":
        return tiled_matmul_kernel(tile, unrolled=True)
    if variant == "prefetch":
        return tiled_matmul_kernel(tile, unrolled=True, prefetch=True)
    raise ValueError(f"unknown matmul variant {variant!r}; "
                     f"expected one of {VARIANTS}")


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------

def _pad_to_multiple(m: np.ndarray, tile: int) -> np.ndarray:
    """Pad a square matrix with zeros so the dimension divides ``tile``
    — the paper notes 12x12 tiles "require padding of the arrays to
    prevent overrun"."""
    n = m.shape[0]
    padded = -(-n // tile) * tile
    if padded == n:
        return m
    out = np.zeros((padded, padded), dtype=m.dtype)
    out[:n, :n] = m
    return out


@dataclass
class MatmulConfig:
    """One bar of Figure 4."""
    variant: str = "tiled_unrolled"
    tile: int = 16

    @property
    def label(self) -> str:
        if self.variant == "naive":
            return "not tiled"
        u = " unrolled" if "unrolled" in self.variant or \
            self.variant == "prefetch" else ""
        p = " prefetch" if self.variant == "prefetch" else ""
        return f"{self.tile}x{self.tile}{u}{p}".replace(" unrolled prefetch",
                                                        " prefetch")


class MatMul(Application):
    """Dense single-precision matrix multiplication C = A x B."""

    name = "matmul"
    description = "dense SGEMM, the Section 4 optimization study"
    kernel_fraction = 0.99
    # The paper compares against "a highly optimized library with SSE2
    # support" (CUBLAS-vs-MKL style); the scalar comparison is ~100X.
    cpu_params = CpuCostParams(simd=True, miss_fraction=0.02, op_scale=0.55)

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"n": 4096, "variant": "tiled_unrolled", "tile": 16}
        return {"n": 64, "variant": "tiled_unrolled", "tile": 16}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        n = int(workload["n"])
        a, b = self._inputs(n)
        return {"C": (a.astype(np.float64) @ b.astype(np.float64))
                .astype(np.float32)}

    @staticmethod
    def _inputs(n: int):
        rng = np.random.default_rng(1234)
        a = rng.standard_normal((n, n), dtype=np.float32)
        b = rng.standard_normal((n, n), dtype=np.float32)
        return a, b

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        n = int(workload["n"])
        variant = str(workload.get("variant", "tiled_unrolled"))
        tile = int(workload.get("tile", 16))
        trace_blocks = int(workload.get("trace_blocks", 4))
        dev = self._make_device(device)

        a, b = self._inputs(n)
        kern = build_kernel(variant, tile)
        block_dim = (16, 16) if variant == "naive" else (tile, tile)
        work_tile = block_dim[0]
        a_p = _pad_to_multiple(a, work_tile)
        b_p = _pad_to_multiple(b, work_tile)
        np_ = a_p.shape[0]

        d_a = dev.to_device(a_p, "A")
        d_b = dev.to_device(b_p, "B")
        d_c = dev.alloc((np_, np_), np.float32, "C")

        grid = (np_ // block_dim[0], np_ // block_dim[1])
        result = self.launch(kern, grid, block_dim, (d_a, d_b, d_c, np_),
                        device=dev, functional=functional,
                        trace_blocks=trace_blocks)
        outputs = {}
        if functional:
            outputs["C"] = dev.from_device(d_c)[:n, :n]
        return self._finish(workload, [result], dev, outputs)

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr
        n = 64
        args = (garr("A", n * n), garr("B", n * n), garr("C", n * n), n)
        return [
            LintTarget(build_kernel(variant, 16), (n // 16, n // 16),
                       (16, 16), args, note=variant)
            for variant in VARIANTS
        ]

    # -- the Figure 4 sweep ------------------------------------------------
    def figure4_configs(self) -> List[MatmulConfig]:
        configs = [MatmulConfig("naive")]
        for tile in TILE_SIZES:
            configs.append(MatmulConfig("tiled", tile))
            configs.append(MatmulConfig("tiled_unrolled", tile))
        return configs

    def run_config(self, config: MatmulConfig, n: int = 4096,
                   functional: bool = False,
                   trace_blocks: int = 2) -> AppRun:
        return self.run({"n": n, "variant": config.variant,
                         "tile": config.tile, "trace_blocks": trace_blocks},
                        functional=functional)
