"""FDTD — finite-difference time-domain electromagnetic simulation.

Table 2's outlier: only **16.4%** of the serial application's time is
in the kernel, "limiting potential application speedup to 1.2X" — the
paper's Amdahl's-law cautionary tale (measured: 10.5X kernel, 1.16X
application, the suite minima).

FDTD is also one of the paper's *time-sliced simulators*: "For each
time step, updates must propagate through the system, requiring global
synchronization.  Since there is no efficient means to ... perform
barrier synchronization across thread blocks, a kernel is invoked for
each time step ... This places high demand on global memory bandwidth
since the kernel must fetch from and store back the entire system to
global memory after performing only a small amount of computation."

We implement the classic 2D TM_z Yee scheme (fields Ez, Hx, Hy) with
PEC boundaries.  Each time step launches two kernels (H update, then E
update) so all inter-step communication goes through global memory,
exactly like the paper's port.  The +1-offset neighbour loads are
misaligned with respect to 64 B segments and therefore *uncoalesced*
under the G80 rules — one of the reasons the kernel saturates the
memory system despite its high thread count.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cuda import Device, kernel
from ..sim.cpumodel import CpuCostParams
from .base import Application, AppRun


def fdtd_h_kernel():
    """Update Hx, Hy from Ez (one interior cell per thread)."""

    @kernel("fdtd_update_h", regs_per_thread=12,
            notes="stencil; +1-offset loads are uncoalesced on G80")
    def update_h(ctx, ez, hx, hy, nx, ny, chx, chy):
        gx = ctx.global_tid_x()
        gy = ctx.global_tid_y()
        ctx.address_ops(4)
        idx = gy * nx + gx
        interior = (gx < nx - 1) & (gy < ny - 1)
        with ctx.masked(interior):
            e = ctx.ld_global(ez, idx)
            e_xp = ctx.ld_global(ez, idx + 1)        # misaligned load
            e_yp = ctx.ld_global(ez, idx + nx)
            h_x = ctx.ld_global(hx, idx)
            h_y = ctx.ld_global(hy, idx)
            h_x = ctx.fma(ctx.fsub(e_xp, e), np.float32(-chx), h_x)
            h_y = ctx.fma(ctx.fsub(e_yp, e), np.float32(chy), h_y)
            ctx.st_global(hx, idx, h_x)
            ctx.st_global(hy, idx, h_y)

    return update_h


def fdtd_e_kernel():
    """Update Ez from Hx, Hy (one interior cell per thread)."""

    @kernel("fdtd_update_e", regs_per_thread=12,
            notes="stencil; -1-offset loads are uncoalesced on G80")
    def update_e(ctx, ez, hx, hy, nx, ny, ce):
        gx = ctx.global_tid_x()
        gy = ctx.global_tid_y()
        ctx.address_ops(4)
        idx = gy * nx + gx
        interior = (gx > 0) & (gx < nx - 1) & (gy > 0) & (gy < ny - 1)
        with ctx.masked(interior):
            e = ctx.ld_global(ez, idx)
            h_y = ctx.ld_global(hy, idx)
            h_ym = ctx.ld_global(hy, idx - nx)
            h_x = ctx.ld_global(hx, idx)
            h_xm = ctx.ld_global(hx, idx - 1)        # misaligned load
            curl = ctx.fsub(ctx.fsub(h_y, h_ym), ctx.fsub(h_x, h_xm))
            ctx.st_global(ez, idx, ctx.fma(curl, np.float32(ce), e))

    return update_e


def _initial_ez(nx: int, ny: int) -> np.ndarray:
    """Gaussian pulse in the middle of the domain (deterministic)."""
    x = np.arange(nx, dtype=np.float32) - nx / 2
    y = np.arange(ny, dtype=np.float32) - ny / 2
    r2 = x[None, :] ** 2 + y[:, None] ** 2
    return np.exp(-r2 / (2.0 * (max(nx, ny) / 16.0) ** 2)).astype(np.float32)


def fdtd_reference(nx, ny, steps, chx=0.5, chy=0.5, ce=0.5):
    """NumPy Yee updates, bit-matching the kernel's operation order."""
    ez = _initial_ez(nx, ny)
    hx = np.zeros((ny, nx), np.float32)
    hy = np.zeros((ny, nx), np.float32)
    for _ in range(steps):
        diff_x = (ez[:-1, 1:] - ez[:-1, :-1]).astype(np.float32)
        diff_y = (ez[1:, :-1] - ez[:-1, :-1]).astype(np.float32)
        hx[:-1, :-1] = diff_x * np.float32(-chx) + hx[:-1, :-1]
        hy[:-1, :-1] = diff_y * np.float32(chy) + hy[:-1, :-1]
        curl = ((hy[1:-1, 1:-1] - hy[:-2, 1:-1])
                - (hx[1:-1, 1:-1] - hx[1:-1, :-2])).astype(np.float32)
        ez[1:-1, 1:-1] = curl * np.float32(ce) + ez[1:-1, 1:-1]
    return ez, hx, hy


class Fdtd(Application):
    """2D TM_z finite-difference time-domain solver."""

    name = "fdtd"
    description = "FDTD electromagnetic field solver (time-sliced)"
    kernel_fraction = 0.164           # Table 2: 16.4% -> app cap 1.2X
    # scalar CPU stencil, streaming working set
    cpu_params = CpuCostParams(simd=True, miss_fraction=1.0)

    BLOCK = (16, 16)

    def default_workload(self, scale: str = "test") -> Dict[str, object]:
        if scale == "full":
            return {"nx": 512, "ny": 512, "steps": 2, "total_steps": 1000}
        return {"nx": 32, "ny": 32, "steps": 3, "total_steps": 3}

    def reference(self, workload: Dict[str, object]) -> Dict[str, np.ndarray]:
        ez, hx, hy = fdtd_reference(int(workload["nx"]), int(workload["ny"]),
                                    int(workload["steps"]))
        return {"Ez": ez, "Hx": hx, "Hy": hy}

    def lint_targets(self):
        from ..analysis.targets import LintTarget, garr
        nx, ny = 64, 32
        grid = (nx // self.BLOCK[0], ny // self.BLOCK[1])
        fields = (garr("ez", nx * ny), garr("hx", nx * ny),
                  garr("hy", nx * ny))
        return [
            LintTarget(fdtd_h_kernel(), grid, self.BLOCK,
                       fields + (nx, ny, 0.5, 0.5), note="h"),
            LintTarget(fdtd_e_kernel(), grid, self.BLOCK,
                       fields + (nx, ny, 0.5), note="e"),
        ]

    def module_schedule(self, workload: Dict[str, object],
                        device: Optional[Device] = None):
        """Declared launch sequence: ``steps`` interleaved H/E update
        launches over the same three field arrays with no host code
        between them — the canonical fully-fusable timestep loop
        (Ez/Hx/Hy are R7 loop-carried and stay device-resident)."""
        from ..compile.module import ModuleSchedule
        from ..cuda.plan import LaunchPlan
        nx, ny = int(workload["nx"]), int(workload["ny"])
        steps = int(workload["steps"])
        total = int(workload.get("total_steps", steps))
        dev = self._make_device(device)

        d_ez = dev.to_device(_initial_ez(nx, ny), "Ez")
        d_hx = dev.to_device(np.zeros((ny, nx), np.float32), "Hx")
        d_hy = dev.to_device(np.zeros((ny, nx), np.float32), "Hy")
        kh, ke = fdtd_h_kernel(), fdtd_e_kernel()
        grid = (nx // self.BLOCK[0], ny // self.BLOCK[1])
        tb = int(workload.get("trace_blocks", 2))

        sched = []
        for _ in range(steps):
            sched.append(LaunchPlan.build(
                kh, grid, self.BLOCK, (d_ez, d_hx, d_hy, nx, ny, 0.5, 0.5),
                device=dev, functional=True, trace_blocks=tb))
            sched.append(LaunchPlan.build(
                ke, grid, self.BLOCK, (d_ez, d_hx, d_hy, nx, ny, 0.5),
                device=dev, functional=True, trace_blocks=tb))

        def outputs() -> Dict[str, np.ndarray]:
            return {"Ez": dev.from_device(d_ez),
                    "Hx": dev.from_device(d_hx),
                    "Hy": dev.from_device(d_hy)}

        return ModuleSchedule(app=self.name, device=dev, steps=sched,
                              outputs=outputs,
                              time_steps_scale=total / steps)

    def run(self, workload: Dict[str, object],
            device: Optional[Device] = None,
            functional: bool = True) -> AppRun:
        nx, ny = int(workload["nx"]), int(workload["ny"])
        steps = int(workload["steps"])
        total = int(workload.get("total_steps", steps))
        dev = self._make_device(device)

        d_ez = dev.to_device(_initial_ez(nx, ny), "Ez")
        d_hx = dev.to_device(np.zeros((ny, nx), np.float32), "Hx")
        d_hy = dev.to_device(np.zeros((ny, nx), np.float32), "Hy")
        kh, ke = fdtd_h_kernel(), fdtd_e_kernel()
        grid = (nx // self.BLOCK[0], ny // self.BLOCK[1])
        tb = int(workload.get("trace_blocks", 2))

        launches = []
        for _ in range(steps):
            launches.append(self.launch(kh, grid, self.BLOCK,
                                   (d_ez, d_hx, d_hy, nx, ny, 0.5, 0.5),
                                   device=dev, functional=functional,
                                   trace_blocks=tb))
            launches.append(self.launch(ke, grid, self.BLOCK,
                                   (d_ez, d_hx, d_hy, nx, ny, 0.5),
                                   device=dev, functional=functional,
                                   trace_blocks=tb))

        outputs = {}
        if functional:
            outputs["Ez"] = dev.from_device(d_ez)
            outputs["Hx"] = dev.from_device(d_hx)
            outputs["Hy"] = dev.from_device(d_hy)
        return self._finish(workload, launches, dev, outputs,
                            time_steps_scale=total / steps)
