"""nvprof-style launch profile reports and the profiler CLI.

Runs an application of the suite under a
:class:`~repro.obs.profiler.LaunchProfiler` and prints one row per
kernel launch — kernel, geometry, executor, block accounting,
per-stage wall time, trace counters and the timing model's binding
bottleneck — the way ``nvprof`` summarized launches on real hardware.

Command line::

    python -m repro.bench.profile_report matmul
    python -m repro.bench.profile_report matmul --json
    python -m repro.bench.profile_report lbm --chrome-trace trace.json
    python -m repro.bench.profile_report matmul --overhead-gate 5
    python -m repro.bench.profile_report matmul --device gtx_480
    python -m repro.bench.profile_report matmul --metrics-derived
    python -m repro.bench.profile_report matmul --roofline --estimate
    python -m repro.bench.profile_report matmul --timeline warps.json

For ``matmul`` the report covers the Section 4 optimization ladder
(naive / tiled / tiled_unrolled / prefetch); any other registry app
runs its default workload.  ``--overhead-gate PCT`` additionally times
a functional matmul sweep with observability fully disabled vs. under
a profiler and fails (exit 1) if profiling costs more than PCT percent
— the CI guard for the zero-overhead-by-default contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.device import DEFAULT_DEVICE, DeviceSpec
from ..obs.profiler import LaunchProfiler, LaunchRecord, STAGES
from .tables import format_table

#: matmul variants the profile ladder walks, in paper order
MATMUL_VARIANTS = ("naive", "tiled", "tiled_unrolled", "prefetch")


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------

def _fmt_count(value: float) -> str:
    """Compact count rendering: 1234 -> "1234", 2.1e7 -> "2.10e7"."""
    if value == 0:
        return "0"
    if value < 1e5:
        return f"{value:.0f}"
    return f"{value:.2e}".replace("e+0", "e").replace("e+", "e")


def format_records(records: Sequence[LaunchRecord],
                   title: str = "launch profile") -> str:
    """The nvprof-like table over a set of launch records."""
    headers = ["kernel", "grid", "block", "exec",
               "blocks(X/T/M)", "plan ms", "exec ms", "coll ms", "fin ms",
               "warp insts", "txn/acc", "GFLOPS", "bound"]
    rows = []
    for rec in records:
        stages_ms = [rec.stage_seconds.get(s, 0.0) * 1e3 for s in STAGES]
        rows.append([
            rec.kernel,
            rec.grid,
            rec.block,
            rec.executor,
            f"{rec.blocks_executed}/{rec.blocks_traced}/{rec.memo_hits}",
            f"{stages_ms[0]:.2f}",
            f"{stages_ms[1]:.2f}",
            f"{stages_ms[2]:.2f}",
            f"{stages_ms[3]:.2f}",
            _fmt_count(rec.warp_insts),
            f"{rec.overall_transactions_per_access:.2f}",
            f"{rec.gflops:.2f}",
            rec.bound,
        ])
    out = format_table(headers, rows, title=title)
    details = []
    for rec in records:
        per_array = ", ".join(f"{name}={tpa:.2f}" for name, tpa
                              in rec.transactions_per_access.items())
        if per_array:
            details.append(f"  {rec.kernel}: txn/access per array: "
                           f"{per_array}")
        io = []
        if rec.io.get("gld_bus_bytes", 0) > 0:
            io.append(f"gld_efficiency={100 * rec.io['gld_useful_bytes'] / rec.io['gld_bus_bytes']:.1f}%")
        if rec.io.get("gst_bus_bytes", 0) > 0:
            io.append(f"gst_efficiency={100 * rec.io['gst_useful_bytes'] / rec.io['gst_bus_bytes']:.1f}%")
        io += [f"{space}_hit_rate={rate:.1%}"
               for space, rate in rec.cache_hit_rates().items()]
        if io:
            details.append(f"  {rec.kernel}: " + "  ".join(io))
    if details:
        out += "\n" + "\n".join(details)
    return out


def format_divergence(records: Sequence[LaunchRecord]) -> str:
    """Per-launch branch-divergence details (R8's dynamic counters)."""
    lines = ["branch divergence:"]
    for rec in records:
        if rec.branch_warps == 0:
            lines.append(f"  {rec.kernel}: no branches recorded")
            continue
        lines.append(
            f"  {rec.kernel}: {_fmt_count(rec.branch_warps)} branch "
            f"warps, {_fmt_count(rec.divergent_branch_warps)} divergent "
            f"({rec.divergent_branch_fraction:.1%}); "
            f"{_fmt_count(rec.divergence_serialized_warp_insts)} "
            f"partial-mask warp insts "
            f"({rec.divergence_serialized_fraction:.1%} of issue)")
    return "\n".join(lines)


def format_metrics(profiler: LaunchProfiler) -> str:
    """Readable dump of the registry counters the run accumulated."""
    lines = ["metrics:"]
    for name, by_label in profiler.registry.to_dict().items():
        for label, value in by_label.items():
            if isinstance(value, dict):       # histogram summary
                value = (f"count={value['count']} mean={value['mean']:.4g} "
                         f"min={value['min']:.4g} max={value['max']:.4g}")
            lines.append(f"  {name}{{{label}}} = {value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Profiling drivers
# ----------------------------------------------------------------------

def profile_matmul(scale: str = "test", executor=None,
                   variants: Sequence[str] = MATMUL_VARIANTS,
                   spec: DeviceSpec = DEFAULT_DEVICE,
                   ) -> Tuple[LaunchProfiler, List[Dict[str, object]]]:
    """Profile the Section 4 matmul ladder; returns (profiler, configs)."""
    from ..apps.matmul import MatMul
    app = MatMul(spec)
    if executor is not None:
        app.executor = executor
    if scale == "full":
        n, trace_blocks, functional = 4096, 2, False
    else:
        n, trace_blocks, functional = 128, 2, True
    configs = []
    profiler = LaunchProfiler()
    with profiler:
        for variant in variants:
            app.run({"n": n, "variant": variant, "tile": 16,
                     "trace_blocks": trace_blocks}, functional=functional)
            configs.append({"variant": variant, "n": n})
    return profiler, configs


def profile_app(name: str, scale: str = "test", executor=None,
                spec: DeviceSpec = DEFAULT_DEVICE,
                ) -> Tuple[LaunchProfiler, List[Dict[str, object]]]:
    """Profile one suite application's default workload."""
    if name == "matmul":
        return profile_matmul(scale=scale, executor=executor, spec=spec)
    from ..apps.registry import get_app
    app = get_app(name, spec)
    if executor is not None:
        app.executor = executor
    workload = app.default_workload(scale)
    profiler = LaunchProfiler()
    with profiler:
        app.run(workload, functional=False)
    return profiler, [dict(workload)]


# ----------------------------------------------------------------------
# Overhead gate
# ----------------------------------------------------------------------

def measure_overhead(n: int = 256, repeats: int = 5) -> Dict[str, float]:
    """Profiler overhead on a functional matmul sweep.

    Runs ``repeats`` (at least 5) *interleaved* disabled/profiled
    pairs and compares medians.  Interleaving matters: timing all the
    disabled runs first and all the profiled runs second lets
    allocator and cache warm-up drift between the two groups, which
    used to report a *negative* overhead.  The reported percentage is
    clamped at zero — the profiler cannot speed a launch up, so any
    negative difference is measurement noise by construction (the raw
    signed value is kept in ``overhead_pct_raw``).
    """
    import statistics

    import numpy as np
    from ..apps.matmul import MatMul, build_kernel
    from ..cuda import BatchedExecutor, Device, launch

    repeats = max(5, repeats)
    tile = 16
    kern = build_kernel("tiled_unrolled", tile)
    a, b = MatMul._inputs(n)

    def one_launch() -> float:
        dev = Device()
        d_a = dev.to_device(a, "A")
        d_b = dev.to_device(b, "B")
        d_c = dev.alloc((n, n), np.float32, "C")
        t0 = perf_counter()
        launch(kern, (n // tile, n // tile), (tile, tile),
               (d_a, d_b, d_c, n), device=dev, executor=BatchedExecutor())
        return perf_counter() - t0

    one_launch()    # warm-up: NumPy allocators, import costs
    with LaunchProfiler():
        one_launch()
    disabled_times, enabled_times = [], []
    for _ in range(repeats):
        disabled_times.append(one_launch())
        with LaunchProfiler():
            enabled_times.append(one_launch())
    disabled = statistics.median(disabled_times)
    enabled = statistics.median(enabled_times)
    raw_pct = 100.0 * (enabled - disabled) / disabled \
        if disabled > 0 else 0.0
    return {
        "workload": f"matmul {n}^3 functional, tiled_unrolled, batched",
        "repeats": repeats,
        "disabled_seconds": round(disabled, 4),
        "profiled_seconds": round(enabled, 4),
        "overhead_pct": round(max(0.0, raw_pct), 2),
        "overhead_pct_raw": round(raw_pct, 2),
    }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile_report",
        description="nvprof-style launch profile of a suite application")
    parser.add_argument("app", help="application name (e.g. matmul, lbm)")
    parser.add_argument("--scale", choices=("test", "full"), default="test")
    parser.add_argument("--executor", default=None,
                        help="executor backend (sequential/batched/"
                             "compiled/process/auto)")
    parser.add_argument("--json", action="store_true",
                        help="emit the structured records as JSON")
    parser.add_argument("--chrome-trace", metavar="PATH", default=None,
                        help="write the span trace as chrome://tracing JSON")
    parser.add_argument("--spans", action="store_true",
                        help="print the wall-clock span tree")
    parser.add_argument("--metrics", action="store_true",
                        help="print the accumulated registry metrics")
    parser.add_argument("--lint", action="store_true",
                        help="append the static analyzer's findings for "
                             "the app's kernels to the report")
    parser.add_argument("--estimate", action="store_true",
                        help="append the static performance estimates "
                             "(census + bounds) for the app's kernels, "
                             "for comparison against the profiled launches")
    parser.add_argument("--metrics-derived", action="store_true",
                        help="append the nvprof-style derived metrics "
                             "(achieved_occupancy, gld_efficiency, ...) "
                             "per launch; with --estimate also prints the "
                             "static-vs-measured deviation per metric")
    parser.add_argument("--roofline", action="store_true",
                        help="append the per-launch roofline report "
                             "(arithmetic intensity vs device peaks); "
                             "with --estimate the static points join "
                             "the chart")
    parser.add_argument("--divergence", action="store_true",
                        help="append per-launch branch-divergence "
                             "details (branch warps, divergent "
                             "fraction, serialized issue share — the "
                             "R8 dynamic counters)")
    parser.add_argument("--timeline", metavar="PATH", default=None,
                        help="record a per-SM warp timeline of the app's "
                             "representative kernel (event-recording "
                             "warpsim replay), write chrome://tracing "
                             "JSON to PATH and print the ASCII "
                             "occupancy strip")
    parser.add_argument("--overhead-gate", metavar="PCT", type=float,
                        default=None,
                        help="fail if profiling overhead exceeds PCT%% "
                             "vs. a disabled-observability run")
    parser.add_argument("--device", metavar="NAME",
                        default="geforce_8800_gtx",
                        help="registered device profile to simulate "
                             "(see repro.arch.registry)")
    args = parser.parse_args(argv)

    from ..arch.registry import device_by_name
    try:
        spec = device_by_name(args.device)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    profiler, configs = profile_app(args.app, scale=args.scale,
                                    executor=args.executor, spec=spec)
    if len(configs) == len(profiler.records):
        paired = zip(profiler.records, configs)
    else:   # one workload, several launches (multi-kernel apps)
        paired = ((rec, configs[0] if configs else {})
                  for rec in profiler.records)
    records = [{**rec.to_dict(), "config": cfg} for rec, cfg in paired]

    overhead = None
    if args.overhead_gate is not None:
        overhead = measure_overhead()

    lint_reports = None
    if args.lint:
        from ..analysis.lint import lint_app
        lint_reports = lint_app(args.app, spec)

    estimates = None
    if args.estimate:
        from ..analysis.estimate import estimate_app
        estimates = estimate_app(args.app, spec)

    derived = None
    deviations = None
    if args.metrics_derived:
        from ..obs.derived import (derive_from_estimate, derive_metrics,
                                   metric_deviation)
        derived = [(rec, derive_metrics(rec, spec))
                   for rec in profiler.records]
        if estimates is not None:
            static = {e.kernel: derive_from_estimate(e, spec)
                      for e in estimates}
            deviations = [(rec.kernel,
                           metric_deviation(vals, static[rec.kernel]))
                          for rec, vals in derived
                          if rec.kernel in static]

    roofline = None
    if args.roofline:
        from ..obs.roofline import (point_from_estimate, point_from_record,
                                    roofline_report)
        points = [point_from_record(rec) for rec in profiler.records]
        if estimates is not None:
            points += [point_from_estimate(e) for e in estimates]
        roofline = roofline_report(points, spec)

    timeline = None
    if args.timeline:
        from ..obs.timeline import timeline_for_target, write_chrome_trace
        from ..apps.registry import get_app
        targets = get_app(args.app, spec).lint_targets()
        target = next((t for t in targets if t.note == "tiled"), targets[0])
        timeline = timeline_for_target(target, spec)
        write_chrome_trace(timeline, args.timeline)

    if args.chrome_trace:
        profiler.tracer.write_chrome_trace(args.chrome_trace)

    if args.json:
        payload = {
            "app": args.app,
            "scale": args.scale,
            "device": args.device,
            "records": records,
            "metrics": profiler.registry.to_dict(),
        }
        if overhead is not None:
            payload["overhead"] = overhead
        if lint_reports is not None:
            payload["lint"] = [r.to_dict() for r in lint_reports]
        if estimates is not None:
            payload["estimates"] = [e.to_dict() for e in estimates]
        if args.divergence:
            payload["divergence"] = [
                {"kernel": rec.kernel,
                 "branch_warps": rec.branch_warps,
                 "divergent_branch_warps": rec.divergent_branch_warps,
                 "divergent_branch_fraction": round(
                     rec.divergent_branch_fraction, 6),
                 "divergence_serialized_warp_insts": (
                     rec.divergence_serialized_warp_insts),
                 "divergence_serialized_fraction": round(
                     rec.divergence_serialized_fraction, 6)}
                for rec in profiler.records]
        if derived is not None:
            payload["derived_metrics"] = [
                {"kernel": rec.kernel, "metrics": vals}
                for rec, vals in derived]
        if deviations is not None:
            payload["estimator_deviation"] = [
                {"kernel": kern, "metrics": dev}
                for kern, dev in deviations]
        if roofline is not None:
            payload["roofline"] = roofline
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(format_records(profiler.records,
                             title=f"launch profile: {args.app} "
                                   f"({args.scale} scale, {args.device})"))
        if lint_reports is not None:
            print()
            print("static analysis:")
            for report in lint_reports:
                for finding in report.findings:
                    print("  " + finding.format())
                if not report.findings:
                    print(f"  {report.label}: clean")
        if estimates is not None:
            from ..analysis.estimate import format_estimate
            print()
            print("static performance estimates:")
            for est in estimates:
                print("  " + format_estimate(est).replace("\n", "\n  "))
        if args.divergence:
            print()
            print(format_divergence(profiler.records))
        if derived is not None:
            from ..obs.derived import format_derived
            for rec, vals in derived:
                print()
                print(format_derived(rec, vals))
        if deviations is not None:
            from ..obs.derived import format_deviation
            for kern, dev in deviations:
                print()
                print(f"{kern}:")
                print("  " + format_deviation(dev).replace("\n", "\n  "))
        if roofline is not None:
            from ..obs.roofline import format_roofline
            print()
            print(format_roofline(roofline))
        if timeline is not None:
            from ..obs.timeline import format_timeline
            print()
            print(format_timeline(timeline))
        if args.metrics:
            print()
            print(format_metrics(profiler))
        if args.spans:
            print()
            print(profiler.tracer.format_tree())
        if overhead is not None:
            print()
            print(f"profiler overhead: {overhead['overhead_pct']:.2f}% "
                  f"(disabled {overhead['disabled_seconds']}s, profiled "
                  f"{overhead['profiled_seconds']}s, "
                  f"best of {overhead['repeats']})")
    if args.chrome_trace and not args.json:
        print(f"chrome trace written to {args.chrome_trace}")
    if args.timeline and not args.json:
        print(f"warp timeline written to {args.timeline}")

    if args.overhead_gate is not None \
            and overhead["overhead_pct"] > args.overhead_gate:
        print(f"FAIL: profiler overhead {overhead['overhead_pct']:.2f}% "
              f"> {args.overhead_gate}% gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
