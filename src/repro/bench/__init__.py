"""Benchmark harness: one runner per paper table/figure."""
from .experiments import (
    ExperimentResult,
    all_experiments,
    run_figure4,
    run_figure5,
    run_section4,
    run_table1,
    run_table2,
    run_table3,
)
from .tables import format_table

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "run_figure4",
    "run_figure5",
    "run_section4",
    "run_table1",
    "run_table2",
    "run_table3",
    "format_table",
]
