"""EXPERIMENTS.md generator.

Runs every experiment at paper scale and writes the paper-vs-measured
record.  Regenerate with::

    python -m repro.bench.report [output-path]
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from ..arch.device import DEFAULT_DEVICE
from .experiments import all_experiments

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction of Ryoo et al., PPoPP'08, on the calibrated GeForce 8800
GTX model (see DESIGN.md for the substitution statement and
`repro/sim/calibration.py` for the model fit).

**Provenance of paper values** — the OCR'd paper text loses the numeric
cells of Tables 2/3 and Figure 4's bar heights; values marked `(r)` are
reconstructed from prose constraints and companion material, unmarked
values appear verbatim in the paper's prose.  See
`repro/data/paper.py`.

**Reading the comparison** — our substrate is a calibrated performance
model, not the authors' silicon, so the claim being reproduced is the
*shape* of each result: who wins, by roughly what factor, where the
crossovers and bottlenecks fall.  The matmul anchors double as the
calibration targets (three timing constants fit once, then frozen for
the entire suite); everything else is out-of-sample.

Regenerate with `python -m repro.bench.report` (about five minutes) or
run the `benchmarks/` tree, which asserts the shape claims one by one.
"""


DEVIATIONS = """
## Deviations and commentary

* **Section 4 anchors** — these four numbers are the calibration
  targets; the fit lands naive/unrolled/prefetch within ~1% and tiled
  within 6.4% (the paper notes its tiled kernel slightly *exceeded* its
  own potential-throughput estimate, which a bound model cannot do).
  The derived quantities match the prose exactly: potential 43.2
  GFLOPS, bandwidth demand 173 GB/s, prefetching slower than plain
  unrolling with a one-block occupancy loss.
* **Figure 4** — the qualitative shape holds: 4x4 tiles no better than
  untiled (10.3 vs 10.6), monotone rise to 16x16, unrolling helping
  16x16 by ~2x and the small tiles far less.  Our 12x12-tiled bar
  lands slightly below 8x8-unrolled; the paper's exact small-tile bar
  heights are not recoverable from the text.
* **Table 3** — measured kernel speedups span 11.3X-460X against the
  paper's 10.5X-457X, with the same extremes (FDTD bottom via its
  16.4% Amdahl cap, MRI-Q top) and the same grouping: trig/compute
  kernels (MRI/CP/RPES) in the hundreds, bandwidth/latency-bound codes
  (LBM, FEM, FDTD, SAXPY, PNS, RC5) in the tens.  MRI-FHD reads ~19%
  above the reconstructed paper value; TPACF ~35% below — both within
  the reconstruction uncertainty of those cells.  H.264 reproduces the
  "more time in transfer than GPU execution" observation.
* **Figure 5 / texture claim** — the paper reports 2.8X for texture
  over its global-only LBM; our cell-major global baseline gives 5.1X
  and the plane-major one 1.5X, bracketing the paper's layout (whose
  exact intermediate organization is not specified).
* **CPU baseline** — per-application cost parameters (SIMD, fast-math,
  cache behaviour) are set from the paper's description of each
  baseline and standard Opteron-248 characteristics; they are
  documented per app in `repro/apps/*.py`.
"""


def generate(path: Optional[str] = None, scale: str = "full") -> str:
    sections = [PREAMBLE]
    sections.append(f"Model device: {DEFAULT_DEVICE.name} | timing "
                    f"parameters: {DEFAULT_DEVICE.timing}\n")
    t0 = time.time()
    for result in all_experiments(scale=scale):
        sections.append("```")
        sections.append(result.render())
        sections.append("```\n")
    sections.append(DEVIATIONS)
    sections.append(f"_Generated in {time.time() - t0:.0f} s of model "
                    f"time on the host._\n")
    text = "\n".join(sections)
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    out = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    generate(out)
    print(f"wrote {out}")
