"""Cross-device retuning benchmark: ladder + autotuner per device.

The paper's Section 4 tuning study is specific to one device: every
bound, occupancy cliff and coalescing verdict is a G80 number.  This
benchmark replays the study across the registered device profiles
(:mod:`repro.arch.registry`) and records what *moves* — the modelled
GFLOPS of the four-variant matmul ladder, and the configuration the
autotuner crowns on each device.  The headline result is the winner
shift: the G80's best configuration (16x16 tiled + unrolled) is not
the best on Fermi-class parts, whose larger thread-block and
shared-memory budgets admit tile sizes the G80 cannot schedule.

Command line::

    python -m repro.bench.devices                    # default devices
    python -m repro.bench.devices --devices geforce_8800_gtx gtx_480
    python -m repro.bench.devices --n 256 --out BENCH_devices.json

Writes ``BENCH_devices.json`` (CI artifact) with one entry per device:
ladder GFLOPS per variant, the autotuner winner, its GFLOPS, and the
pruning statistics of the estimator-guided search.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..arch.registry import device_by_name
from ..sim.autotuner import MatmulAutotuner
from .tables import format_table

#: profiles the benchmark sweeps by default: the paper's device, the
#: Fermi-class part, and a modern-class part
DEFAULT_DEVICES = ("geforce_8800_gtx", "gtx_480", "rtx_3090")

#: matmul variants of the Section 4 ladder, in paper order
LADDER_VARIANTS = ("naive", "tiled", "tiled_unrolled", "prefetch")


def run_ladder(spec, n: int = 512, trace_blocks: int = 2
               ) -> Dict[str, float]:
    """Modelled GFLOPS of the Section 4 ladder (16x16 tiles) on
    ``spec``."""
    from ..apps.matmul import MatMul
    app = MatMul(spec)
    out = {}
    for variant in LADDER_VARIANTS:
        run = app.run({"n": n, "variant": variant, "tile": 16,
                       "trace_blocks": trace_blocks}, functional=False)
        out[variant] = round(run.launches[0].estimate().gflops, 2)
    return out


def tune_device(spec, n: int = 512, trace_blocks: int = 2,
                prune: bool = True) -> Dict[str, object]:
    """Autotune the matmul space on ``spec``; returns the winner and
    the search statistics."""
    tuner = MatmulAutotuner(n=n, trace_blocks=trace_blocks, spec=spec)
    result = tuner.exhaustive(prune=prune)
    best = result.best
    return {
        "tile_sizes": list(tuner.tiles),
        "space_size": len(tuner.space()),
        "evaluated": len(result.evaluations),
        "pruned": len(result.pruned),
        "winner": {"tile": best.tile, "unrolled": best.unrolled,
                   "prefetch": best.prefetch,
                   "label": best.config.label},
        "winner_gflops": round(result.best_gflops, 2),
        "local_maxima": [
            {"tile": p.tile, "unrolled": p.unrolled, "prefetch": p.prefetch,
             "gflops": round(g, 2)}
            for p, g in result.local_maxima],
    }


def run_devices(names: Sequence[str] = DEFAULT_DEVICES, n: int = 512,
                trace_blocks: int = 2, prune: bool = True
                ) -> List[Dict[str, object]]:
    """Ladder + retune for each named device profile."""
    entries = []
    for name in names:
        spec = device_by_name(name)
        entries.append({
            "device": name,
            "generation": spec.generation,
            "compute_capability": list(spec.compute_capability),
            "peak_mad_gflops": round(spec.peak_mad_gflops, 1),
            "dram_bandwidth_gbs": spec.dram_bandwidth_gbs,
            "n": n,
            "ladder_gflops": run_ladder(spec, n, trace_blocks),
            "autotune": tune_device(spec, n, trace_blocks, prune),
        })
    return entries


def format_entries(entries: Sequence[Dict[str, object]]) -> str:
    headers = ["device", "peak", "naive", "tiled", "unrolled", "prefetch",
               "winner", "winner GFLOPS", "eval/pruned"]
    rows = []
    for e in entries:
        ladder = e["ladder_gflops"]
        tune = e["autotune"]
        rows.append([
            e["device"],
            f"{e['peak_mad_gflops']:.0f}",
            f"{ladder['naive']:.1f}",
            f"{ladder['tiled']:.1f}",
            f"{ladder['tiled_unrolled']:.1f}",
            f"{ladder['prefetch']:.1f}",
            tune["winner"]["label"],
            f"{tune['winner_gflops']:.1f}",
            f"{tune['evaluated']}/{tune['pruned']}",
        ])
    return format_table(headers, rows,
                        title="cross-device matmul ladder + retune "
                              "(modelled GFLOPS)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.devices",
        description="Section 4 matmul ladder and autotuner winner "
                    "across registered device profiles")
    parser.add_argument("--devices", nargs="+", default=list(DEFAULT_DEVICES),
                        help="registered device names to sweep")
    parser.add_argument("--n", type=int, default=512,
                        help="matrix size for the ladder and the tuner")
    parser.add_argument("--trace-blocks", type=int, default=2)
    parser.add_argument("--no-prune", action="store_true",
                        help="exhaustive evaluation without static-bound "
                             "pruning")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSON payload here "
                             "(default: BENCH_devices.json in the CWD)")
    args = parser.parse_args(argv)

    try:
        entries = run_devices(args.devices, n=args.n,
                              trace_blocks=args.trace_blocks,
                              prune=not args.no_prune)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    print(format_entries(entries))
    winners = {e["device"]: e["autotune"]["winner"]["label"]
               for e in entries}
    if len(set(winners.values())) > 1:
        print("note: autotuner winner shifts across devices: "
              + ", ".join(f"{d} -> {w}" for d, w in winners.items()))

    from ..obs.history import run_provenance
    payload = {
        "benchmark": "cross_device_retune",
        "n": args.n,
        **run_provenance(),
        "devices": entries,
    }
    out = Path(args.out) if args.out else Path("BENCH_devices.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
