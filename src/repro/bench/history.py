"""Perf-history CLI: append bench manifests, gate on regressions.

Reads the bench envelopes the other jobs produce, flattens them into
provenance-stamped manifests (:mod:`repro.obs.history`), appends them
to the run history, and compares the deterministic modelled metrics
against the committed baseline::

    python -m repro.bench.history --gate 10
    python -m repro.bench.history --devices BENCH_devices.json \\
        --history BENCH_history.jsonl --gate 10
    python -m repro.bench.history --gate 10 --inject-slowdown 15  # must fail
    python -m repro.bench.history --update-baseline               # retune

Exit status: 0 when every gated metric is within the gate, 3 on any
regression (or a baseline metric the run no longer produces), 2 on
usage errors.  ``--inject-slowdown PCT`` scales the current metrics
down before comparison — the self-test CI uses to prove the gate
actually trips.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs.history import (append_history, baseline_from_manifests,
                           compare_to_baseline, format_comparison,
                           load_baseline, manifest_from_devices,
                           manifest_from_pipeline)

#: default committed baseline (deterministic modelled metrics only)
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] \
    / "benchmarks" / "baseline_history.json"


def collect_manifests(pipeline: Optional[Path], devices: Optional[Path]
                      ) -> List[Dict[str, object]]:
    manifests: List[Dict[str, object]] = []
    if pipeline and pipeline.exists():
        manifests.append(
            manifest_from_pipeline(json.loads(pipeline.read_text())))
    if devices and devices.exists():
        manifests.append(
            manifest_from_devices(json.loads(devices.read_text())))
    return manifests


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="append bench manifests to the perf history and "
                    "gate modelled metrics against the baseline")
    parser.add_argument("--pipeline", type=Path,
                        default=Path("BENCH_pipeline.json"),
                        help="pipeline envelope (skipped when absent)")
    parser.add_argument("--devices", type=Path,
                        default=Path("BENCH_devices.json"),
                        help="devices envelope (skipped when absent)")
    parser.add_argument("--history", type=Path,
                        default=Path("BENCH_history.jsonl"),
                        help="JSONL history file to append to")
    parser.add_argument("--no-append", action="store_true",
                        help="compare only; leave the history file alone")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--gate", type=float, default=None, metavar="PCT",
                        help="fail when any gated metric drops more than "
                             "PCT%% below the baseline")
    parser.add_argument("--inject-slowdown", type=float, default=None,
                        metavar="PCT",
                        help="self-test: scale current metrics down PCT%% "
                             "before the comparison")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's "
                             "gateable metrics")
    args = parser.parse_args(argv)

    manifests = collect_manifests(args.pipeline, args.devices)
    if not manifests:
        print("no bench envelopes found "
              f"({args.pipeline}, {args.devices})", file=sys.stderr)
        return 2

    for m in manifests:
        print(f"manifest: {m['source']}  sha={m['git_sha'][:12]}  "
              f"{m['timestamp']}  {len(m['metrics'])} metrics")
    if not args.no_append:
        append_history(manifests, args.history)
        print(f"appended {len(manifests)} manifest(s) to {args.history}")

    if args.update_baseline:
        payload = baseline_from_manifests(manifests)
        if not payload["gate_metrics"]:
            print("no gateable (devices) metrics in this run",
                  file=sys.stderr)
            return 2
        args.baseline.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(payload['gate_metrics'])} metrics)")
        return 0

    if args.gate is None:
        return 0
    if not args.baseline.exists():
        print(f"baseline not found: {args.baseline} "
              "(run with --update-baseline first)", file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)

    if args.inject_slowdown:
        factor = 1.0 - args.inject_slowdown / 100.0
        for m in manifests:
            m["metrics"] = {k: v * factor for k, v in m["metrics"].items()}
        print(f"self-test: injected {args.inject_slowdown:g}% slowdown")

    rows = compare_to_baseline(manifests, baseline, args.gate)
    print(format_comparison(rows, args.gate))
    failing = [r for r in rows if r["status"] in ("regression", "missing")]
    if failing:
        print(f"FAIL: {len(failing)} metric(s) regressed beyond "
              f"{args.gate:g}% (or went missing)", file=sys.stderr)
        return 3
    print("OK: all gated metrics within the gate")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
