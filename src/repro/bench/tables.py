"""ASCII table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table (numbers right-aligned)."""
    srows: List[List[str]] = []
    for row in rows:
        srows.append([_cell(c) for c in row])
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                         for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in srows)
    return "\n".join(lines)


def _cell(c: object) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 100:
            return f"{c:.0f}"
        if abs(c) >= 1:
            return f"{c:.2f}"
        return f"{c:.3f}"
    return str(c)


def _numeric(c: str) -> bool:
    try:
        float(c.replace("%", "").replace("x", "").replace("(r)", ""))
        return True
    except ValueError:
        return False
