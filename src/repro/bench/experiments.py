"""Experiment runners: one function per paper table/figure.

Each ``run_*`` function executes the relevant simulations and returns a
:class:`ExperimentResult` whose rows place our measurement next to the
paper's reported value (with provenance marks from
:mod:`repro.data.paper`).  The ``benchmarks/`` tree wraps these in
pytest-benchmark targets; ``examples/`` and the EXPERIMENTS.md
generator call them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arch import DEFAULT_DEVICE
from ..apps.matmul import MatMul
from ..apps.lbm import Lbm
from ..apps.registry import get_app, suite_names
from ..data import paper
from ..obs.profiler import LaunchProfiler
from ..sim.bounds import analyze_bounds
from .tables import format_table


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus free-form notes.

    ``records`` carries the structured per-config launch profiles
    (:meth:`~repro.obs.profiler.LaunchRecord.to_dict` dicts tagged with
    the configuration that produced them) for experiments that run
    under a :class:`~repro.obs.profiler.LaunchProfiler` — evidence to
    attach to any performance claim derived from the table.
    """

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        out = format_table(self.headers, self.rows,
                           title=f"{self.exp_id}: {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out


# ----------------------------------------------------------------------
# Table 1 — memory spaces
# ----------------------------------------------------------------------

def run_table1() -> ExperimentResult:
    from ..arch.memory_table import memory_table, HEADERS
    rows = [info.row() for info in memory_table(DEFAULT_DEVICE)]
    return ExperimentResult("Table 1", "GeForce 8800 memory spaces",
                            HEADERS, rows)


# ----------------------------------------------------------------------
# Section 4 — the four matmul anchors
# ----------------------------------------------------------------------

def run_section4(n: int = 4096, trace_blocks: int = 2,
                 executor=None) -> ExperimentResult:
    app = MatMul()
    if executor is not None:
        app.executor = executor
    rows = []
    for variant in ("naive", "tiled", "tiled_unrolled", "prefetch"):
        run = app.run({"n": n, "variant": variant, "tile": 16,
                       "trace_blocks": trace_blocks}, functional=False)
        launch = run.launches[0]
        est = launch.estimate()
        bounds = analyze_bounds(launch.trace, launch.spec)
        ref = paper.MATMUL_GFLOPS[variant]
        rows.append([
            variant,
            round(est.gflops, 2),
            f"{ref.value}{ref.mark}",
            round(est.gflops / ref.value, 3),
            round(bounds.potential_gflops, 1),
            round(bounds.bandwidth_demand_gbs, 1),
            est.occupancy.blocks_per_sm,
            est.bound,
        ])
    res = ExperimentResult(
        "Section 4", f"matrix multiplication study ({n}x{n})",
        ["variant", "GFLOPS (model)", "GFLOPS (paper)", "ratio",
         "potential", "BW demand GB/s", "blocks/SM", "bound"],
        rows)
    res.notes.append(
        "paper prose anchors: potential 43.2 (naive) / 93.72 (unrolled) "
        "GFLOPS; bandwidth demand 173 GB/s; tiling speedup ~4.5X")
    return res


# ----------------------------------------------------------------------
# Figure 4 — tile size x unrolling sweep
# ----------------------------------------------------------------------

def run_figure4(n: int = 4096, trace_blocks: int = 2,
                executor=None) -> ExperimentResult:
    app = MatMul()
    if executor is not None:
        app.executor = executor
    rows = []
    records = []
    for config in app.figure4_configs():
        with LaunchProfiler() as prof:
            run = app.run_config(config, n=n, trace_blocks=trace_blocks)
        records.extend({**rec.to_dict(), "config": config.label}
                       for rec in prof.records)
        est = run.launches[0].estimate()
        occ = est.occupancy
        ref = paper.FIGURE4_GFLOPS.get(config.label)
        rows.append([
            config.label,
            round(est.gflops, 2),
            f"{ref.value}{ref.mark}" if ref else "-",
            occ.blocks_per_sm,
            occ.active_threads_per_sm,
            est.bound,
        ])
    res = ExperimentResult(
        "Figure 4", f"matmul GFLOPS vs tile size ({n}x{n})",
        ["configuration", "GFLOPS (model)", "GFLOPS (paper)",
         "blocks/SM", "threads/SM", "bound"],
        rows, records=records)
    res.notes.append("(r) = reconstructed bar height; only the 16x16 "
                     "bars survive in the OCR'd prose")
    return res


# ----------------------------------------------------------------------
# Table 2 — application suite
# ----------------------------------------------------------------------

def run_table2() -> ExperimentResult:
    import inspect
    rows = []
    for name in suite_names():
        app = get_app(name)
        t2 = paper.TABLE2[name]
        module = inspect.getmodule(type(app))
        our_lines = len(inspect.getsource(module).splitlines())
        rows.append([
            name,
            t2.source_lines,
            t2.kernel_lines,
            f"{100 * t2.kernel_fraction:.1f}%"
            + ("" if t2.fraction_provenance == paper.PROSE else " (r)"),
            our_lines,
            f"{100 * app.kernel_fraction:.1f}%",
        ])
    res = ExperimentResult(
        "Table 2", "application suite",
        ["app", "paper src lines", "paper kernel lines", "paper %kernel",
         "our module lines", "our %kernel"],
        rows)
    res.notes.append("paper line counts are C/C++ application totals; "
                     "our column counts the Python port module")
    return res


# ----------------------------------------------------------------------
# Table 3 — suite characteristics and speedups
# ----------------------------------------------------------------------

def run_table3(scale: str = "full",
               names: Optional[Sequence[str]] = None,
               executor=None) -> ExperimentResult:
    rows = []
    records = []
    measured: Dict[str, Dict[str, float]] = {}
    for name in (names or suite_names()):
        app = get_app(name)
        if executor is not None:
            app.executor = executor
        with LaunchProfiler() as prof:
            run = app.run(app.default_workload(scale), functional=False)
        records.extend({**rec.to_dict(), "config": {"app": name,
                                                    "scale": scale}}
                       for rec in prof.records)
        t3 = paper.TABLE3[name]
        trace = run.merged_trace
        rows.append([
            name,
            run.max_simultaneous_threads,
            run.registers_per_thread,
            run.smem_per_block,
            round(trace.memory_to_compute_ratio, 3),
            f"{100 * run.gpu_exec_fraction:.0f}%",
            f"{100 * run.transfer_fraction:.0f}%",
            run.bottleneck,
            round(run.kernel_speedup, 1),
            f"{t3.kernel_speedup.value}{t3.kernel_speedup.mark}",
            round(run.app_speedup, 2),
            f"{t3.app_speedup.value}{t3.app_speedup.mark}",
        ])
        measured[name] = {"kernel": run.kernel_speedup,
                          "app": run.app_speedup}
    res = ExperimentResult(
        "Table 3", f"suite characteristics and speedups ({scale} scale)",
        ["app", "max threads", "regs", "smem/blk", "mem/comp",
         "GPU%", "xfer%", "bottleneck",
         "kernel X", "paper", "app X", "paper"],
        rows, records=records)
    ks = [m["kernel"] for m in measured.values()]
    as_ = [m["app"] for m in measured.values()]
    res.notes.append(
        f"measured kernel speedups span {min(ks):.1f}X-{max(ks):.0f}X "
        f"(paper: {paper.KERNEL_SPEEDUP_RANGE[0]}X-"
        f"{paper.KERNEL_SPEEDUP_RANGE[1]:.0f}X); app speedups "
        f"{min(as_):.2f}X-{max(as_):.0f}X (paper: "
        f"{paper.APP_SPEEDUP_RANGE[0]}X-{paper.APP_SPEEDUP_RANGE[1]:.0f}X)")
    return res


# ----------------------------------------------------------------------
# Figure 5 — LBM access patterns (+ the Section 5.2 texture claim)
# ----------------------------------------------------------------------

def run_figure5(nx: int = 256, ny: int = 256,
                executor=None) -> ExperimentResult:
    app = Lbm()
    if executor is not None:
        app.executor = executor
    rows = []
    times = {}
    for layout in ("aos", "soa", "texture"):
        run = app.run({"nx": nx, "ny": ny, "steps": 1, "total_steps": 1,
                       "layout": layout}, functional=False)
        est = run.launches[0].estimate()
        trace = run.merged_trace
        loads = trace.per_array.get("f_a")
        times[layout] = est.seconds
        rows.append([
            layout,
            round(loads.transactions_per_access, 2) if loads else "-",
            f"{100 * (loads.bus_efficiency if loads else 1):.0f}%",
            round(est.seconds * 1e3, 3),
            est.bound,
        ])
    res = ExperimentResult(
        "Figure 5", f"LBM global load access patterns ({nx}x{ny})",
        ["layout", "transactions/half-warp access", "bus efficiency",
         "step time (ms)", "bound"],
        rows)
    res.notes.append(
        f"texture speedup over cell-major global accesses: "
        f"{times['aos'] / times['texture']:.2f}X; over plane-major "
        f"global: {times['soa'] / times['texture']:.2f}X "
        f"(paper Section 5.2: 2.8X over its global-only version)")
    return res


def all_experiments(scale: str = "full") -> List[ExperimentResult]:
    """Run every table/figure (used by the EXPERIMENTS.md generator)."""
    n = 4096 if scale == "full" else 512
    return [
        run_table1(),
        run_section4(n=n),
        run_figure4(n=n),
        run_table2(),
        run_table3(scale=scale),
        run_figure5(),
    ]
