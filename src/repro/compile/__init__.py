"""Grid-vectorizing kernel compiler.

Lowers a DSL kernel's AST into one whole-grid NumPy program: thread
loops become array axes ``(block, tz, ty, tx)``, ``__syncthreads()``
becomes a compile-time program-point split, divergent branches become
masked stores, and shared-memory tiles become per-block staging
arrays.  The :class:`~repro.cuda.executors.CompiledExecutor` runs
these programs with bit-identical results to the sequential
interpreter, falling back per kernel when a construct is unsupported.
"""

from .artifact import (ArtifactCache, COMPILER_VERSION,
                       active_artifact_cache, install_artifact_cache,
                       kernel_fingerprint, use_artifact_cache)
from .fuse import FusedGroup, FusionPlan, fuse_schedule
from .lower import CompileError, LoweredFunction, LoweringSession
from .module import CompiledModule, HostStep, ModuleSchedule
from .program import (CompiledProgram, clear_program_cache,
                      compile_kernel, compile_status, executable_for,
                      get_program, plan_context)
from .runtime import NP_SHIM, GridPrelude, GridRT, LaneCount, prelude_for

__all__ = [
    "ArtifactCache",
    "COMPILER_VERSION",
    "CompileError",
    "CompiledModule",
    "CompiledProgram",
    "FusedGroup",
    "FusionPlan",
    "GridPrelude",
    "GridRT",
    "HostStep",
    "LaneCount",
    "LoweredFunction",
    "LoweringSession",
    "ModuleSchedule",
    "NP_SHIM",
    "active_artifact_cache",
    "clear_program_cache",
    "compile_kernel",
    "compile_status",
    "executable_for",
    "fuse_schedule",
    "get_program",
    "install_artifact_cache",
    "kernel_fingerprint",
    "plan_context",
    "prelude_for",
    "use_artifact_cache",
]
