"""Grid-vectorizing kernel compiler.

Lowers a DSL kernel's AST into one whole-grid NumPy program: thread
loops become array axes ``(block, tz, ty, tx)``, ``__syncthreads()``
becomes a compile-time program-point split, divergent branches become
masked stores, and shared-memory tiles become per-block staging
arrays.  The :class:`~repro.cuda.executors.CompiledExecutor` runs
these programs with bit-identical results to the sequential
interpreter, falling back per kernel when a construct is unsupported.
"""

from .lower import CompileError, LoweredFunction, LoweringSession
from .program import (CompiledProgram, clear_program_cache,
                      compile_kernel, compile_status, executable_for,
                      get_program)
from .runtime import NP_SHIM, GridPrelude, GridRT, LaneCount, prelude_for

__all__ = [
    "CompileError",
    "CompiledProgram",
    "GridPrelude",
    "GridRT",
    "LaneCount",
    "LoweredFunction",
    "LoweringSession",
    "NP_SHIM",
    "clear_program_cache",
    "compile_kernel",
    "compile_status",
    "executable_for",
    "get_program",
    "prelude_for",
]
