"""Launch-sequence fusion planning — the legality pass of the AOT
module layer.

Given a :class:`~repro.compile.module.ModuleSchedule` (the launch
plans an application declares up front, interleaved with explicit
host steps), this pass decides which contiguous runs of launches may
execute as one *fused group* of the compiled module, and what each
group's intermediate arrays are allowed to do:

* The **R7 inter-launch dataflow** rule
  (:func:`repro.analysis.rules.analyze_launch_sequence`) is the
  legality oracle.  Its per-array verdicts drive the group metadata:
  an array that is ``fusable-private`` inside a group (one producing
  launch, consumed only by later launches of the same group, dead
  after it) never needs to reach the host between the group's
  launches; a ``loop-carried`` array must stay device-resident across
  the group's iterations with its carried dependence preserved —
  which back-to-back in-order execution of the group does by
  construction.

* A group is *broken* by anything whose effects the compiled program
  cannot see: an explicit :class:`~repro.compile.module.HostStep`
  (host code between launches is an opaque barrier), a kernel the
  grid compiler refuses (``compile_status``), a non-functional or
  stream-recording launch.

* Inter-launch **global synchronization is preserved**: the paper's
  time-sliced apps (LBM, FDTD) split work into one launch per step
  precisely because a step reads neighbour cells written by other
  blocks of the previous step.  Fusion therefore never merges two
  launches into one grid sweep; a fused group executes its launches
  back-to-back *inside the module* — intermediates stay
  device-resident, per-launch plan/trace overhead is paid once per
  distinct configuration — with the full-grid materialization between
  steps intact.

Groups that fail the checks fall back to per-launch execution; the
refusal reason is recorded on the group for observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .program import compile_status, plan_context

__all__ = ["FusedGroup", "FusionPlan", "fuse_schedule"]


@dataclass(frozen=True)
class FusedGroup:
    """One maximal run of schedule steps with a single verdict."""

    #: indices into ``schedule.steps`` (launch steps only)
    steps: Tuple[int, ...]
    #: True when the group executes inside the compiled module
    fused: bool
    #: why fusion was refused (empty for fused groups)
    reason: str = ""
    #: arrays classified fusable-private with all defs/uses inside
    #: this group — never materialized for the host between launches
    interior: Tuple[str, ...] = ()
    #: loop-carried arrays the group keeps device-resident across its
    #: launches (the carried dependence rides on execution order)
    carried: Tuple[str, ...] = ()

    @property
    def fused_boundaries(self) -> int:
        """Launch-to-launch boundaries this group absorbs."""
        return max(0, len(self.steps) - 1) if self.fused else 0


@dataclass
class FusionPlan:
    """The whole schedule's grouping plus the R7 evidence."""

    groups: List[FusedGroup] = field(default_factory=list)
    #: R7 verdicts over the schedule's launch sequence (launch indices
    #: therein count *launches*, not schedule steps)
    dataflow: Optional[object] = None
    #: schedule-step index -> launch-sequence index
    launch_index: Dict[int, int] = field(default_factory=dict)

    @property
    def fuse_applied(self) -> int:
        return sum(g.fused_boundaries for g in self.groups)

    def group_of(self, step_index: int) -> Optional[FusedGroup]:
        for group in self.groups:
            if step_index in group.steps:
                return group
        return None


def _refusal(plan) -> str:
    """Why one launch cannot join a fused group ('' when it can)."""
    if not plan.functional:
        return "non-functional launch (trace-only)"
    if plan.record_stream:
        return "instruction-stream recording launch"
    if not plan.kernel.batchable:
        return f"kernel {plan.kernel.name!r} is batchable=False"
    ok, reason = compile_status(plan.kernel, plan_context(plan))
    if not ok:
        return f"not grid-compilable: {reason}"
    return ""


def fuse_schedule(schedule, spec=None, policy=None) -> FusionPlan:
    """Plan the fused execution of one :class:`ModuleSchedule`.

    Walks the schedule in order, growing a group while launches stay
    fusable, and closing it at every host step or refused launch.
    Groups shorter than ``policy.min_fuse_steps`` execute per-launch
    (nothing to amortize).  R7 runs once over the whole launch
    sequence; its classifications are then scoped to each group.
    """
    from ..analysis.rules import analyze_launch_sequence
    from ..cuda.executors import get_policy
    from .module import HostStep

    policy = policy or get_policy()
    spec = spec or schedule.device.spec

    plans = []
    launch_index: Dict[int, int] = {}
    for i, step in enumerate(schedule.steps):
        if not isinstance(step, HostStep):
            launch_index[i] = len(plans)
            plans.append(step)
    dataflow = analyze_launch_sequence(plans, app=schedule.app, spec=spec)

    plan_out = FusionPlan(dataflow=dataflow, launch_index=launch_index)
    run: List[int] = []

    def close(boundary: str = "") -> None:
        # a boundary (host step) only *caps* the run — the launches
        # before it still fuse with each other when there are enough
        # of them to amortize anything
        nonlocal run
        if not run:
            return
        if len(run) < policy.min_fuse_steps:
            reason = (f"group of {len(run)} launch(es) below the "
                      f"fusion threshold ({policy.min_fuse_steps})")
            if boundary:
                reason = f"{boundary}; {reason}"
            plan_out.groups.append(FusedGroup(
                steps=tuple(run), fused=False, reason=reason))
        else:
            interior, carried = _scope_arrays(
                dataflow, [launch_index[i] for i in run])
            plan_out.groups.append(FusedGroup(
                steps=tuple(run), fused=True,
                interior=interior, carried=carried))
        run = []

    for i, step in enumerate(schedule.steps):
        if isinstance(step, HostStep):
            close(f"host step barrier: {step.note or 'host code'}")
            continue
        refusal = _refusal(step)
        if refusal:
            # a refused launch is its own unfused group; it also caps
            # the run before it
            close()
            plan_out.groups.append(FusedGroup(
                steps=(i,), fused=False, reason=refusal))
            continue
        run.append(i)
    close()
    return plan_out


def _scope_arrays(dataflow, launch_indices: List[int]
                  ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Restrict R7's whole-sequence verdicts to one group: an array is
    *interior* (fusable-private with every def and use inside the
    group) or *carried* (loop-carried with at least one def inside)."""
    inside = set(launch_indices)
    interior: List[str] = []
    carried: List[str] = []
    for name, df in sorted(dataflow.arrays.items()):
        touches = set(df.defs) | set(df.uses)
        if not (touches & inside):
            continue
        if df.classification == "fusable-private" and touches <= inside:
            interior.append(name)
        elif df.classification == "loop-carried" \
                and set(df.defs) & inside:
            carried.append(name)
    return tuple(interior), tuple(carried)
