"""Whole-grid runtime for compiled kernels — the lowered ``ctx``.

A compiled kernel no longer executes once per block: the lowering in
:mod:`repro.compile.lower` rewrites every ``ctx.*`` operation into a
call on a :class:`GridRT`, whose per-thread values span *every block
of a contiguous grid segment at once*.  The representation is the key
to the speedup (Section 4's "restructure to match the wide execution
units" applied to our own interpreter):

Axes representation
    A lane value is a NumPy array broadcastable to the 4-axis lane
    shape ``(blocks, bz, by, bx)`` where the trailing three axes are
    the thread coordinates of one block.  Identity vectors keep
    size-1 axes everywhere they are constant — ``tx`` is
    ``(1, 1, 1, X)``, ``by`` is ``(blocks, 1, 1, 1)`` — so
    block-invariant index arithmetic touches a few hundred elements
    instead of ``blocks * threads`` lanes, and the first genuinely
    mixed operation (typically the FMA of an inner loop) fuses the
    broadcast into a single NumPy pass.  The C-order ravel of the
    lane shape is exactly the block-major lane order of the
    sequential and batched backends, which is what makes fancy-index
    scatters (last-writer-wins) and ``np.add.at`` atomics bit-compatible.

Numeric mirroring
    Every helper reproduces the dtype behavior of
    :class:`repro.cuda.context.BlockContext` *exactly* — the f32
    casts of ``fma``, the NEP-50-sensitive ``result_type`` rule of
    ``select``, the clip-vs-raise asymmetry of shared loads vs
    stores — so compiled device arrays are bit-identical to the
    reference backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.device import DeviceSpec
from ..cuda.dim3 import Dim3
from ..cuda.memory import CudaModelError

__all__ = ["GridPrelude", "GridRT", "LaneCount", "NP_SHIM",
           "prelude_for"]


class LaneCount(int):
    """``ctx.nthreads`` after lowering: an ``int`` (total lanes of the
    segment, matching the batched backend's widened ``nthreads``) that
    the NumPy shim can recognize when a kernel allocates per-thread
    vectors with ``np.zeros(ctx.nthreads, ...)``."""

    __slots__ = ()


#: broadcast seed shape of a per-lane allocation (all axes size 1)
_SEED = (1, 1, 1, 1)


class _NumpyShim:
    """Stands in for the ``np`` module inside lowered kernel code.

    Per-thread allocations (``np.zeros(ctx.nthreads)`` and friends,
    including through an alias such as ``t = ctx.nthreads``) must
    produce broadcastable seeds instead of flat ``(lanes,)`` vectors;
    everything else forwards to NumPy unchanged.
    """

    def __getattr__(self, name):
        value = getattr(np, name)
        # cache plain passthroughs so the lookup cost is paid once
        if name not in ("zeros", "ones", "empty", "full"):
            object.__setattr__(self, name, value)
        return value

    @staticmethod
    def zeros(shape, dtype=float, **kw):
        if isinstance(shape, LaneCount):
            return np.zeros(_SEED, dtype=dtype)
        return np.zeros(shape, dtype=dtype, **kw)

    @staticmethod
    def ones(shape, dtype=None, **kw):
        if isinstance(shape, LaneCount):
            return np.ones(_SEED, dtype=dtype)
        return np.ones(shape, dtype=dtype, **kw)

    @staticmethod
    def empty(shape, dtype=float, **kw):
        if isinstance(shape, LaneCount):
            # zeros, not empty: lane seeds must be deterministic
            return np.zeros(_SEED, dtype=dtype)
        return np.empty(shape, dtype=dtype, **kw)

    @staticmethod
    def full(shape, fill_value, dtype=None, **kw):
        if isinstance(shape, LaneCount):
            fill = np.asarray(fill_value) if dtype is None \
                else np.asarray(fill_value, dtype=dtype)
            if fill.ndim == 0:
                return np.full(_SEED, fill_value, dtype=dtype)
            # array fill (already lane-shaped): np.full semantics are
            # "broadcast the fill over the shape" — a fresh copy
            return np.array(fill, copy=True)
        return np.full(shape, fill_value, dtype=dtype, **kw)


NP_SHIM = _NumpyShim()


class GridPrelude:
    """Identity arrays of one (grid, block) geometry, full-grid sized.

    Built once per geometry and cached; executors slice the block axis
    per contiguous segment (zero-copy views).
    """

    def __init__(self, grid: Dim3, block: Dim3) -> None:
        self.grid = grid
        self.block = block
        nb = grid.size
        lin = np.arange(nb, dtype=np.int64)
        self.lin4 = lin.reshape(nb, 1, 1, 1)
        self.bx4 = (lin % grid.x).reshape(nb, 1, 1, 1)
        self.by4 = ((lin // grid.x) % grid.y).reshape(nb, 1, 1, 1)
        self.bz4 = (lin // (grid.x * grid.y)).reshape(nb, 1, 1, 1)
        X, Y, Z = block.x, block.y, block.z
        self.tx4 = np.arange(X, dtype=np.int64).reshape(1, 1, 1, X)
        self.ty4 = np.arange(Y, dtype=np.int64).reshape(1, 1, Y, 1)
        self.tz4 = np.arange(Z, dtype=np.int64).reshape(1, Z, 1, 1)
        # flat thread id within the block, full (1, Z, Y, X)
        self.tid4 = (self.tz4 * (X * Y) + self.ty4 * X + self.tx4)


_PRELUDES: Dict[Tuple, GridPrelude] = {}


def prelude_for(grid: Dim3, block: Dim3) -> GridPrelude:
    """Cached identity prelude per (grid, block) geometry."""
    key = (grid.x, grid.y, grid.z, block.x, block.y, block.z)
    pre = _PRELUDES.get(key)
    if pre is None:
        if len(_PRELUDES) > 64:     # bound the cache; preludes are cheap
            _PRELUDES.clear()
        pre = _PRELUDES[key] = GridPrelude(grid, block)
    return pre


class _SharedTile:
    """Per-block shared scratchpad of one segment: ``data2d`` holds one
    row per block; ``size``/``shape`` keep the per-block geometry the
    DSL's bounds checks are written against."""

    __slots__ = ("name", "shape", "size", "dtype", "itemsize",
                 "data2d", "data1d", "off4", "_iota")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype,
                 nblocks: int, slot4: np.ndarray) -> None:
        self.name = name
        self.shape = shape
        self.size = int(np.prod(shape))
        self.dtype = np.dtype(dtype)
        self.itemsize = self.dtype.itemsize
        self.data2d = np.zeros((nblocks, self.size), dtype=self.dtype)
        self.data1d = self.data2d.reshape(-1)
        #: absolute flat offset of each block's row, (nb, 1, 1, 1)
        self.off4 = slot4 * self.size
        self._iota = np.arange(self.size, dtype=np.int64)


class GridRT:
    """Lowered-``ctx`` runtime over one contiguous block segment."""

    def __init__(self, prelude: GridPrelude, start: int, stop: int,
                 spec: DeviceSpec, kernel_name: str = "") -> None:
        self.spec = spec
        self.kernel_name = kernel_name
        self.gridDim = prelude.grid
        self.blockDim = prelude.block
        block = prelude.block
        nb = stop - start
        self._nblocks = nb
        T = block.size
        self.threads_per_block = T
        self.nthreads = LaneCount(nb * T)
        self.nwarps = -(-T // spec.warp_size)
        self.lane_shape = (nb, block.z, block.y, block.x)
        # identity views (no copies)
        self.bx = prelude.bx4[start:stop]
        self.by = prelude.by4[start:stop]
        self.bz = prelude.bz4[start:stop]
        self.block_linear = prelude.lin4[start:stop]
        self.tx = prelude.tx4
        self.ty = prelude.ty4
        self.tz = prelude.tz4
        self.tid = prelude.tid4
        self._slot4 = np.arange(nb, dtype=np.int64).reshape(nb, 1, 1, 1)
        self._mask_stack: List[np.ndarray] = [np.ones(_SEED, dtype=bool)]
        self._smem_words = 0
        self.shared_arrays: List[_SharedTile] = []
        self._gtid = None

    # -- identity ------------------------------------------------------
    def global_tid_x(self) -> np.ndarray:
        return self.bx * self.blockDim.x + self.tx

    def global_tid_y(self) -> np.ndarray:
        return self.by * self.blockDim.y + self.ty

    def global_tid(self) -> np.ndarray:
        if self._gtid is None:
            self._gtid = self.block_linear * self.threads_per_block \
                + self.tid
        return self._gtid

    # -- masks ---------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        return self._mask_stack[-1]

    def push_mask(self, cond) -> None:
        cond = np.asarray(cond, dtype=bool)
        if cond.ndim == 0:
            cond = cond.reshape(_SEED)
        self._mask_stack.append(self._mask_stack[-1] & cond)

    def pop_mask(self) -> None:
        self._mask_stack.pop()

    def merge(self, new, old) -> np.ndarray:
        return np.where(self.mask, self._bc(new), self._bc(old))

    def any_active(self, cond) -> bool:
        cond = np.asarray(cond, dtype=bool)
        return bool(np.any(self._mask_stack[-1] & cond))

    def sync(self) -> None:
        """Whole-grid statements already execute at one program point
        for every thread — the barrier is trivially satisfied."""

    # -- value plumbing ------------------------------------------------
    @staticmethod
    def _bc(v, dtype=None) -> np.ndarray:
        a = np.asarray(v, dtype=dtype)
        if a.ndim == 0:
            a = a.reshape(_SEED)
        return a

    @staticmethod
    def _idx(index) -> np.ndarray:
        idx = np.asarray(index)
        if idx.ndim == 0:
            idx = idx.reshape(_SEED)
        return idx.astype(np.int64, copy=False)

    def _where(self) -> str:
        name = self.kernel_name or "<kernel>"
        b = self.blockDim
        return f"{name} [block {b.x}x{b.y}x{b.z}, compiled grid segment]"

    def _check_bounds(self, arr, idx: np.ndarray,
                      mask: Optional[np.ndarray]) -> None:
        if mask is None:
            if idx.size == 0:
                return
            lo, hi = int(idx.min()), int(idx.max())
        else:
            mb, ib = np.broadcast_arrays(mask, idx)
            act = ib[mb]
            if act.size == 0:
                return
            lo, hi = int(act.min()), int(act.max())
        if lo < 0 or hi >= arr.size:
            raise CudaModelError(
                f"out-of-bounds access to {arr.name!r}: "
                f"index range [{lo}, {hi}] vs size {arr.size}")

    def _full_flat(self, a: np.ndarray) -> np.ndarray:
        return np.broadcast_to(a, self.lane_shape).reshape(-1)

    # -- arithmetic (bit-exact mirrors of BlockContext) ----------------
    @staticmethod
    def _f32(a: np.ndarray) -> np.ndarray:
        """Dtype guarantee of BlockContext's trailing ``astype``
        without its unconditional copy (f32-in/f32-out is the common
        case and the values are identical either way)."""
        return np.asarray(a, dtype=np.float32)

    def fma(self, a, b, c) -> np.ndarray:
        return self._f32(self._bc(a, np.float32) * self._bc(b, np.float32)
                         + self._bc(c, np.float32))

    def fadd(self, a, b) -> np.ndarray:
        return self._f32(self._bc(a, np.float32)
                         + self._bc(b, np.float32))

    def fsub(self, a, b) -> np.ndarray:
        return self._f32(self._bc(a, np.float32)
                         - self._bc(b, np.float32))

    def fmul(self, a, b) -> np.ndarray:
        return self._f32(self._bc(a, np.float32)
                         * self._bc(b, np.float32))

    def fdiv(self, a, b) -> np.ndarray:
        return self._f32(self._bc(a, np.float32)
                         / self._bc(b, np.float32))

    def fmin(self, a, b) -> np.ndarray:
        return np.minimum(self._bc(a, np.float32), self._bc(b, np.float32))

    def fmax(self, a, b) -> np.ndarray:
        return np.maximum(self._bc(a, np.float32), self._bc(b, np.float32))

    def iadd(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) + self._bc(b, np.int64)

    def isub(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) - self._bc(b, np.int64)

    def imul(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) * self._bc(b, np.int64)

    def iand(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) & self._bc(b, np.int64)

    def ior(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) | self._bc(b, np.int64)

    def ixor(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) ^ self._bc(b, np.int64)

    def ishl(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) << self._bc(b, np.int64)

    def ishr(self, a, b) -> np.ndarray:
        return self._bc(a, np.int64) >> self._bc(b, np.int64)

    def cvt(self, a, dtype) -> np.ndarray:
        return self._bc(a).astype(dtype)

    def select(self, cond, a, b) -> np.ndarray:
        cond = self._bc(cond, bool)
        av, bv = self._bc(a), self._bc(b)
        out_dtype = np.result_type(av.dtype, bv.dtype)
        return np.asarray(np.where(cond, av, bv), dtype=out_dtype)

    def _sfu(self, fn, x) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return self._f32(fn(self._bc(x, np.float32)))

    def sfu_sin(self, x) -> np.ndarray:
        return self._sfu(np.sin, x)

    def sfu_cos(self, x) -> np.ndarray:
        return self._sfu(np.cos, x)

    def sfu_rsqrt(self, x) -> np.ndarray:
        return self._sfu(lambda v: 1.0 / np.sqrt(v), x)

    def sfu_sqrt(self, x) -> np.ndarray:
        return self._sfu(np.sqrt, x)

    def sfu_exp(self, x) -> np.ndarray:
        return self._sfu(np.exp, x)

    def sfu_log(self, x) -> np.ndarray:
        return self._sfu(lambda v: np.log(np.maximum(v, 1e-30)), x)

    def sfu_rcp(self, x) -> np.ndarray:
        return self._sfu(lambda v: 1.0 / v, x)

    # -- global memory -------------------------------------------------
    def ld_global(self, arr, index) -> np.ndarray:
        if arr.space != "global":
            raise CudaModelError(
                f"ld_global on {arr.space!r} array {arr.name!r}")
        idx = self._idx(index)
        if len(self._mask_stack) == 1:
            self._check_bounds(arr, idx, None)
            return arr.data[idx]
        mask = self.mask
        self._check_bounds(arr, idx, mask)
        return arr.data[np.where(mask, idx, 0)]

    def st_global(self, arr, index, value) -> None:
        if arr.space != "global":
            raise CudaModelError(
                f"st_global on {arr.space!r} array {arr.name!r}")
        idx = self._idx(index)
        vals = self._bc(value, arr.data.dtype)
        if len(self._mask_stack) == 1:
            self._check_bounds(arr, idx, None)
            arr.data[self._full_flat(idx)] = self._full_flat(vals)
            return
        mask = self.mask
        self._check_bounds(arr, idx, mask)
        mflat = self._full_flat(mask)
        arr.data[self._full_flat(idx)[mflat]] = self._full_flat(vals)[mflat]

    def atom_global_add(self, arr, index, value) -> None:
        idx = self._idx(index)
        vals = self._bc(value, arr.data.dtype)
        if len(self._mask_stack) == 1:
            self._check_bounds(arr, idx, None)
            np.add.at(arr.data, self._full_flat(idx), self._full_flat(vals))
            return
        mask = self.mask
        self._check_bounds(arr, idx, mask)
        mflat = self._full_flat(mask)
        np.add.at(arr.data, self._full_flat(idx)[mflat],
                  self._full_flat(vals)[mflat])

    # -- cached read-only paths ----------------------------------------
    def _ld_ro(self, arr, index) -> np.ndarray:
        idx = self._idx(index)
        if len(self._mask_stack) == 1:
            self._check_bounds(arr, idx, None)
            return arr.data[idx]
        mask = self.mask
        self._check_bounds(arr, idx, mask)
        return arr.data[np.where(mask, idx, 0)]

    def ld_const(self, arr, index) -> np.ndarray:
        if arr.space != "const":
            raise CudaModelError(
                f"ld_const on {arr.space!r} array {arr.name!r}")
        return self._ld_ro(arr, index)

    def ld_tex(self, arr, index) -> np.ndarray:
        if arr.space != "tex":
            raise CudaModelError(
                f"ld_tex on {arr.space!r} array {arr.name!r}")
        return self._ld_ro(arr, index)

    # -- shared memory -------------------------------------------------
    @property
    def smem_bytes(self) -> int:
        return self._smem_words * 4

    def shared_alloc(self, shape, dtype=np.float32,
                     name: str = "smem") -> _SharedTile:
        tile = _SharedTile(name, tuple(np.atleast_1d(shape)),
                           np.dtype(dtype), self._nblocks, self._slot4)
        self._smem_words += max(1, tile.itemsize // 4) * tile.size
        if self.smem_bytes > self.spec.shared_mem_per_sm:
            raise CudaModelError(
                f"{self._where()}: shared memory overflow: block requests "
                f"{self.smem_bytes} B > {self.spec.shared_mem_per_sm} B "
                f"per SM")
        self.shared_arrays.append(tile)
        return tile

    def ld_shared(self, sh: _SharedTile, index) -> np.ndarray:
        idx = self._idx(index)
        # clip-to-bounds like BlockContext.ld_shared; raw ufuncs skip
        # np.clip's dispatch overhead (hot: once per inner-loop load)
        safe = np.minimum(np.maximum(idx, 0), sh.size - 1)
        if len(self._mask_stack) > 1:
            safe = np.where(self.mask, safe, 0)
        if safe.shape[0] == 1:
            # block-invariant indices: a 2D column gather keeps the
            # result at (blocks,) + the index's (sub-)thread shape
            # instead of materializing absolute flat indices
            return sh.data2d[:, safe[0]]
        return sh.data1d[safe + sh.off4]

    def st_shared(self, sh: _SharedTile, index, value) -> None:
        idx = self._idx(index)
        vals = self._bc(value, sh.dtype)
        if len(self._mask_stack) == 1:
            if idx.size and (idx.min() < 0 or idx.max() >= sh.size):
                raise CudaModelError(
                    f"{self._where()}: shared store out of bounds on "
                    f"{sh.name!r}: indices span [{int(idx.min())}, "
                    f"{int(idx.max())}] vs size {sh.size}")
            if idx.shape[0] == 1:
                if idx.size == sh.size \
                        and idx.size == self.threads_per_block \
                        and np.array_equal(idx.reshape(-1), sh._iota):
                    # identity permutation (e.g. st_shared(tile,
                    # ty*X+tx, v)): a contiguous row copy, no scatter
                    sh.data2d[...] = np.broadcast_to(
                        vals, self.lane_shape).reshape(sh.data2d.shape)
                    return
                # block-invariant indices: one vectorized column write
                # per block row (duplicate indices resolve in C order,
                # which IS the lane order)
                sh.data2d[:, idx[0]] = vals
                return
            sh.data1d[self._full_flat(idx + sh.off4)] = self._full_flat(vals)
            return
        mask = self.mask
        mb, ib = np.broadcast_arrays(mask, idx)
        act = ib[mb]
        if act.size and (act.min() < 0 or act.max() >= sh.size):
            raise CudaModelError(
                f"{self._where()}: shared store out of bounds on "
                f"{sh.name!r}: indices span [{int(act.min())}, "
                f"{int(act.max())}] vs size {sh.size}")
        mflat = self._full_flat(mask)
        sh.data1d[self._full_flat(idx + sh.off4)[mflat]] = \
            self._full_flat(vals)[mflat]
