"""Whole-application AOT modules.

The per-kernel pipeline (plan → executor → collector) treats every
launch as an island: each one builds a plan, traces its sample blocks
through the scalar interpreter, and materializes its trace — even when
an application launches the *same configuration* hundreds of times in
a timestep loop.  A :class:`CompiledModule` treats the application's
declared launch sequence (:class:`ModuleSchedule`) as the compilation
unit instead:

* :func:`repro.compile.fuse.fuse_schedule` partitions the sequence
  into **fused groups** using the R7 inter-launch dataflow as the
  legality oracle — ``fusable-private`` intermediates never leave the
  device between a group's launches, ``loop-carried`` arrays stay
  device-resident across its iterations, and host steps / refused
  kernels break groups (those launches transparently fall back to the
  ordinary per-launch path).

* Inside a fused group the first occurrence of each distinct launch
  configuration (:meth:`~repro.cuda.plan.LaunchPlan.module_key`) runs
  through the full :class:`~repro.cuda.executors.CompiledExecutor`
  path — exact traced sample blocks, bit-identical outputs.  Every
  repeat executes the compiled program directly and **replays** the
  recorded trace: the dominant per-launch cost (two scalar traced
  blocks with per-operation accounting) is paid once per
  configuration, not once per launch.  Replay is sound for the same
  reason trace memoization (``memoize=True``) is: a launch
  configuration fixes the kernel's address and control streams, which
  for the suite's kernels are data-independent.  Set
  ``ExecutorPolicy.module_trace_replay=False`` (or
  ``REPRO_MODULE_TRACE_REPLAY=0``) to re-trace every launch.

* Compiled programs come through the artifact-cache-aware
  :func:`repro.compile.get_program`, so a warm on-disk cache
  (``REPRO_AOT_CACHE``) lets a cold process skip lowering entirely.

What fusion does **not** do: merge two launches into one grid sweep.
The paper's time-sliced applications launch one kernel per step
precisely because a step reads neighbour cells other blocks wrote in
the previous step — the launch boundary *is* the global barrier.  A
fused group preserves it by running its launches back-to-back in
order; the win is amortization, not reordering.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..cuda.executors import (CompiledExecutor, ExecutorPolicy,
                              get_policy)
from ..cuda.launch import LaunchResult
from ..obs.profiler import active_profiler
from ..obs.registry import get_registry
from .fuse import FusionPlan, fuse_schedule
from .program import get_program, plan_context
from .runtime import GridRT, prelude_for

__all__ = ["CompiledModule", "HostStep", "ModuleSchedule"]


@dataclass
class HostStep:
    """Host code between launches (D2D copies, constant staging...).

    An explicit fusion barrier: the module runs ``fn()`` at the step's
    position and never fuses across it.
    """

    fn: Callable[[], None]
    note: str = ""


@dataclass
class ModuleSchedule:
    """An application's declared launch sequence.

    Built by :meth:`repro.apps.base.Application.module_schedule`:
    every :class:`~repro.cuda.plan.LaunchPlan` is constructed up front
    (plan building is side-effect-free), host logic between launches
    is declared as :class:`HostStep` entries, and ``outputs()``
    downloads the results after the last step.
    """

    app: str
    device: object                     # repro.cuda.memory.Device
    steps: List[Union[object, HostStep]] = field(default_factory=list)
    #: host-side download of the final results (runs after execution)
    outputs: Optional[Callable[[], Dict[str, np.ndarray]]] = None
    #: iterative solvers: executed steps stand for this many
    time_steps_scale: float = 1.0

    def plans(self) -> List[object]:
        return [s for s in self.steps if not isinstance(s, HostStep)]


@dataclass
class _Replay:
    """Recorded accounting of one launch configuration."""

    trace: object                      # KernelTrace (finalized, scaled)
    smem_bytes: int
    blocks_traced: int
    dispositions: Dict[str, int]
    memo_hits: int


class CompiledModule:
    """Executable form of one :class:`ModuleSchedule` (see module
    docstring).  ``stats`` is a local :class:`collections.Counter`
    (``fuse_applied`` / ``trace_replays`` / ``fallback_launches`` /
    ``host_steps`` / ``fused_launches``); the same events feed the
    ambient metrics registry as ``module.*`` counters when enabled.
    """

    def __init__(self, schedule: ModuleSchedule,
                 policy: Optional[ExecutorPolicy] = None) -> None:
        self.schedule = schedule
        self.policy = policy or get_policy()
        self.fusion: FusionPlan = fuse_schedule(
            schedule, spec=schedule.device.spec, policy=self.policy)
        self.stats: Counter = Counter()
        self._replays: Dict[Tuple, _Replay] = {}
        self._executor = CompiledExecutor()
        self._fused_steps = frozenset(
            i for g in self.fusion.groups if g.fused for i in g.steps)

    # ------------------------------------------------------------------
    def execute(self) -> List[LaunchResult]:
        """Run the whole schedule; returns one result per launch."""
        registry = get_registry()
        results: List[LaunchResult] = []
        for i, step in enumerate(self.schedule.steps):
            if isinstance(step, HostStep):
                step.fn()
                self.stats["host_steps"] += 1
                continue
            if i in self._fused_steps:
                results.append(self._run_fused(step))
            else:
                results.append(self._run_fallback(step))
        self.stats["fuse_applied"] = self.fusion.fuse_applied
        if registry.enabled:
            app = self.schedule.app
            registry.counter("module.fuse_applied", app=app).inc(
                self.fusion.fuse_applied)
            for key in ("trace_replays", "fallback_launches",
                        "fused_launches", "host_steps"):
                if self.stats[key]:
                    registry.counter(f"module.{key}", app=app).inc(
                        self.stats[key])
        return results

    # ------------------------------------------------------------------
    def _run_fallback(self, plan) -> LaunchResult:
        """Per-launch path for steps outside fused groups."""
        self.stats["fallback_launches"] += 1
        return plan.execute("auto")

    def _replay_eligible(self, plan) -> bool:
        return (self.policy.module_trace_replay
                and plan.trace_enabled
                and not plan.record_stream
                and not plan.memoize)

    def _run_fused(self, plan) -> LaunchResult:
        key = plan.module_key()
        if self._replay_eligible(plan):
            replay = self._replays.get(key)
            if replay is not None:
                return self._run_replay(plan, replay)
        result = self._executor.execute(plan)
        self.stats["fused_launches"] += 1
        if self._replay_eligible(plan) and result.executor == "compiled":
            self._replays[key] = _Replay(
                trace=result.trace.scaled(1.0),
                smem_bytes=result.smem_bytes_per_block,
                blocks_traced=result.blocks_traced,
                dispositions=dict(result.block_dispositions),
                memo_hits=result.memo_hits)
        return result

    def _run_replay(self, plan, replay: _Replay) -> LaunchResult:
        """Execute the compiled program over the full grid and attach
        the configuration's recorded accounting — no plan re-tracing,
        no collector."""
        program = get_program(plan.kernel, plan_context(plan))
        prelude = prelude_for(plan.grid, plan.block)
        t0 = perf_counter()
        chunk = max(1, self._executor.max_lanes // plan.block.size)
        start, total = 0, plan.grid.size
        while start < total:
            stop = min(total, start + chunk)
            rt = GridRT(prelude, start, stop, plan.spec, plan.kernel.name)
            program.entry(rt, *plan.args)
            start = stop
        t1 = perf_counter()
        result = LaunchResult(
            kernel=plan.kernel,
            grid=plan.grid,
            block=plan.block,
            trace=replay.trace.scaled(1.0),
            smem_bytes_per_block=replay.smem_bytes,
            device=plan.device,
            blocks_executed=total,
            blocks_traced=replay.blocks_traced,
            stream=None,
            executor="module",
            memo_hits=replay.memo_hits,
            block_dispositions=dict(replay.dispositions),
            stage_seconds={
                "plan": plan.build_seconds,
                "execute": t1 - t0,
                "collect": 0.0,
                "finalize": 0.0,
            },
        )
        self.stats["trace_replays"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("launch.count", kernel=plan.kernel.name,
                             executor="module").inc()
        profiler = active_profiler()
        if profiler is not None:
            profiler.on_launch(result)
        return result
