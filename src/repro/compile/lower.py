"""AST lowering: DSL kernel source -> whole-grid NumPy program.

The lowering reuses the approach of the PR-3 abstract interpreter
(:mod:`repro.analysis.interp`): parse the kernel's own source, resolve
its closure/global environment, and drive every ``ctx.*`` site from
the :data:`repro.cuda.context.CTX_OPS` table.  Where the interpreter
*re-executes* the AST per sample block, the lowerer *rewrites* it once
into an ordinary Python function over :class:`repro.compile.runtime.GridRT`:

* ``ctx.fma(a, b, c)``            -> ``__rt.fma(a, b, c)``
* ``ctx.tx`` / ``ctx.nthreads``   -> precomputed axis identities
* ``with ctx.masked(c): body``    -> ``push_mask(c); try: body
  finally: pop_mask()`` (predicated stores, no divergence)
* ``ctx.sync()``                  -> deleted: whole-grid statements
  already form one program point per source line, so the barrier is
  a compile-time split, not a runtime operation.  Inside ``masked``
  it is allowed only when the R8 uniformity dataflow
  (:mod:`repro.analysis.divergence`) proves every enclosing mask
  uniform/block-uniform — every lane of a block agrees, so the
  barrier is never divergent; otherwise refused (the DSL would
  deadlock there too)
* ``ctx.loop_tail/address_ops``   -> deleted (bookkeeping only)
* ``np.zeros(ctx.nthreads, ...)`` -> broadcastable lane seed, even
  through aliases (``t = ctx.nthreads``), via the runtime NumPy shim
* helper calls (``rotl(ctx, x, r)``) -> recursively lowered helpers

Anything outside the supported construct set raises
:class:`CompileError` with the reason; the compiled executor then
falls back to the batched interpreter for that kernel.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cuda.context import CTX_ATTRS, CTX_OPS

__all__ = ["CompileError", "LoweringSession", "LoweredFunction"]


class CompileError(Exception):
    """A kernel construct the grid compiler does not support."""


#: ctx methods that vanish entirely (accounting the vectorized
#: execution performs implicitly; the census path re-synthesizes them)
_META_OPS = frozenset(op for op, meta in CTX_OPS.items()
                      if meta.category == "meta")

#: environment value types that may be bound into lowered code as-is
_CONST_TYPES = (int, float, complex, bool, str, bytes, type(None),
                tuple, list, dict, frozenset, set, type,
                np.ndarray, np.generic, np.dtype, types.ModuleType)

#: statements that have no lowering (visit methods raise below)
_FORBIDDEN_STMTS = {
    ast.Raise: "raise", ast.Try: "try", ast.Import: "import",
    ast.ImportFrom: "import", ast.Global: "global",
    ast.Nonlocal: "nonlocal", ast.ClassDef: "class", ast.Delete: "del",
    ast.AsyncFunctionDef: "async def", ast.AsyncFor: "async for",
    ast.AsyncWith: "async with",
}


def _is_numpy(value) -> bool:
    return isinstance(value, types.ModuleType) \
        and getattr(value, "__name__", "") == "numpy"


def _target_names(node: ast.AST) -> List[str]:
    """All plain names bound by an assignment-target tree."""
    names: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
    return names


def _collect_locals(fndef: ast.FunctionDef) -> set:
    """Every name the function binds: params, assignment/for/with/
    comprehension targets and walrus expressions."""
    bound = {a.arg for a in fndef.args.args}
    for node in ast.walk(fndef):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                bound.update(_target_names(t))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.For):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.comprehension):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars:
            bound.update(_target_names(node.optional_vars))
    return bound


@dataclass
class LoweredFunction:
    """One lowered function: the compiled callable plus its debug
    source (``ast.unparse`` of the rewritten tree)."""

    name: str
    callable: object
    source: str


class _FunctionLowerer(ast.NodeTransformer):
    """Rewrites one function body; shared session handles helpers."""

    def __init__(self, session: "LoweringSession", fn,
                 ctx_names: frozenset, env: Dict[str, object],
                 bindings: Dict[str, object]) -> None:
        self.session = session
        self.fn = fn
        self.ctx_names = ctx_names
        self.env = env
        self.bindings = bindings        # globals dict of the lowered fn
        self.locals: set = set()
        self.mask_depth = 0
        #: absolute source lines of ``ctx.masked`` branches the R8
        #: uniformity dataflow proved uniform/block-uniform — a
        #: ``__syncthreads`` under only such masks is never divergent
        #: (every lane of a block agrees), so it lowers instead of
        #: refusing the kernel
        self.uniform_lines: frozenset = frozenset()
        self._masked_uniform: List[bool] = []

    def fail(self, node: Optional[ast.AST], message: str) -> CompileError:
        line = getattr(node, "lineno", None)
        where = f"{self.fn.__name__}"
        if line is not None:
            base = getattr(self.fn.__code__, "co_firstlineno", 1)
            where += f" (line {base + line - 1})"
        return CompileError(f"{where}: {message}")

    # -- names ---------------------------------------------------------
    def visit_Name(self, node: ast.Name) -> ast.AST:
        if not isinstance(node.ctx, ast.Load):
            return node
        name = node.id
        if name in self.locals:
            return node
        if name in self.ctx_names:
            raise self.fail(node, "ctx escapes into an expression the "
                                  "lowerer cannot follow")
        if name in self.env:
            value = self.env[name]
            if _is_numpy(value):
                self.session.uses_numpy_shim = True
                self.bindings["__np"] = self.session.np_shim
                return ast.copy_location(
                    ast.Name("__np", ast.Load()), node)
            if isinstance(value, types.FunctionType):
                raise self.fail(
                    node, f"function {name!r} referenced outside a "
                          f"direct call")
            if isinstance(value, _CONST_TYPES):
                self.bindings[name] = value
                return node
            raise self.fail(
                node, f"global {name!r} of unsupported type "
                      f"{type(value).__name__}")
        if hasattr(builtins, name):
            return node
        raise self.fail(node, f"unresolvable name {name!r}")

    # -- ctx attributes ------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        if isinstance(node.value, ast.Name) \
                and node.value.id in self.ctx_names:
            if not isinstance(node.ctx, ast.Load):
                raise self.fail(node, "assignment to a ctx attribute")
            if node.attr in CTX_ATTRS:
                return ast.copy_location(
                    ast.Attribute(ast.Name("__rt", ast.Load()),
                                  node.attr, ast.Load()), node)
            raise self.fail(
                node, f"ctx.{node.attr} read without a call — only the "
                      f"data attributes {CTX_ATTRS} lower directly")
        return self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def _check_call_shape(self, node: ast.Call) -> None:
        if any(isinstance(a, ast.Starred) for a in node.args):
            raise self.fail(node, "*args call")
        if any(kw.arg is None for kw in node.keywords):
            raise self.fail(node, "**kwargs call")

    def visit_Call(self, node: ast.Call) -> ast.AST:
        func = node.func
        # ctx.<op>(...) — the CTX_OPS-driven dispatch
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in self.ctx_names:
            op = func.attr
            meta = CTX_OPS.get(op)
            if meta is None:
                raise self.fail(node, f"unknown ctx method {op!r}")
            self._check_call_shape(node)
            if op in _META_OPS:
                return ast.copy_location(ast.Constant(None), node)
            if op == "sync":
                raise self.fail(
                    node, "__syncthreads() used as an expression")
            if op == "masked":
                raise self.fail(
                    node, "ctx.masked outside a with statement")
            self.session.lowered_ops += 1
            return ast.copy_location(ast.Call(
                ast.Attribute(ast.Name("__rt", ast.Load()), op,
                              ast.Load()),
                [self.visit(a) for a in node.args],
                [ast.keyword(kw.arg, self.visit(kw.value))
                 for kw in node.keywords]), node)
        # helper(ctx, ...) — recursively lowered user function
        if isinstance(func, ast.Name) and func.id not in self.locals \
                and func.id in self.env \
                and isinstance(self.env[func.id], types.FunctionType):
            self._check_call_shape(node)
            for kw in node.keywords:
                if isinstance(kw.value, ast.Name) \
                        and kw.value.id in self.ctx_names:
                    raise self.fail(node, "ctx passed by keyword")
            ctx_positions = tuple(
                i for i, a in enumerate(node.args)
                if isinstance(a, ast.Name) and a.id in self.ctx_names)
            helper = self.session.lower_function(
                self.env[func.id], ctx_positions)
            self.bindings[helper.name] = helper.callable
            new_args = [ast.Name("__rt", ast.Load())]
            new_args += [self.visit(a) for i, a in enumerate(node.args)
                         if i not in ctx_positions]
            return ast.copy_location(ast.Call(
                ast.Name(helper.name, ast.Load()), new_args,
                [ast.keyword(kw.arg, self.visit(kw.value))
                 for kw in node.keywords]), node)
        return self.generic_visit(node)

    # -- statements ----------------------------------------------------
    def visit_Expr(self, node: ast.Expr):
        call = node.value
        if isinstance(call, ast.Call) \
                and isinstance(call.func, ast.Attribute) \
                and isinstance(call.func.value, ast.Name) \
                and call.func.value.id in self.ctx_names:
            op = call.func.attr
            if op in _META_OPS:
                return None                      # pure accounting
            if op == "sync":
                if self._masked_uniform and not all(self._masked_uniform):
                    raise self.fail(
                        node, "__syncthreads() inside divergent control "
                              "flow — the uniformity analysis cannot "
                              "prove every enclosing mask uniform (the "
                              "DSL rejects it at runtime too)")
                self.session.sync_points += 1
                return None                      # program-point split
        return self.generic_visit(node)

    def visit_With(self, node: ast.With):
        if len(node.items) != 1:
            raise self.fail(node, "multi-item with statement")
        item = node.items[0]
        call = item.context_expr
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id in self.ctx_names
                and call.func.attr == "masked"):
            raise self.fail(node, "with statement that is not ctx.masked")
        if item.optional_vars is not None:
            raise self.fail(node, "ctx.masked(...) as <name>")
        if len(call.args) != 1 or call.keywords:
            raise self.fail(node, "ctx.masked takes exactly one condition")
        cond = self.visit(call.args[0])
        base = getattr(self.fn.__code__, "co_firstlineno", 1)
        absolute = base + node.lineno - 1
        self.mask_depth += 1
        self._masked_uniform.append(absolute in self.uniform_lines)
        try:
            body = self._visit_body(node.body, node)
        finally:
            self.mask_depth -= 1
            self._masked_uniform.pop()
        rt = ast.Name("__rt", ast.Load())
        push = ast.Expr(ast.Call(
            ast.Attribute(rt, "push_mask", ast.Load()), [cond], []))
        pop = ast.Expr(ast.Call(
            ast.Attribute(ast.Name("__rt", ast.Load()), "pop_mask",
                          ast.Load()), [], []))
        guarded = ast.Try(body=body, handlers=[], orelse=[],
                          finalbody=[pop])
        return [ast.copy_location(push, node),
                ast.copy_location(guarded, node)]

    def visit_Assign(self, node: ast.Assign):
        if isinstance(node.value, ast.Name) \
                and node.value.id in self.ctx_names:
            raise self.fail(node, "aliasing ctx to another name")
        for t in node.targets:
            if isinstance(t, ast.Attribute):
                raise self.fail(node, "assignment to an attribute")
            for name in _target_names(t):
                if name in self.ctx_names:
                    raise self.fail(node, "rebinding the ctx name")
        return self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):
        if isinstance(node.target, ast.Attribute):
            raise self.fail(node, "augmented assignment to an attribute")
        return self.generic_visit(node)

    def visit_If(self, node: ast.If):
        node.test = self.visit(node.test)
        node.body = self._visit_body(node.body, node)
        node.orelse = self._visit_opt_body(node.orelse)
        return node

    def visit_While(self, node: ast.While):
        node.test = self.visit(node.test)
        node.body = self._visit_body(node.body, node)
        node.orelse = self._visit_opt_body(node.orelse)
        return node

    def visit_For(self, node: ast.For):
        node.target = self.visit(node.target)
        node.iter = self.visit(node.iter)
        node.body = self._visit_body(node.body, node)
        node.orelse = self._visit_opt_body(node.orelse)
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        raise self.fail(node, "nested function definition")

    def visit_Lambda(self, node: ast.Lambda):
        raise self.fail(node, "lambda expression")

    def visit_GeneratorExp(self, node: ast.GeneratorExp):
        # a generator is a lazily-evaluated nested scope; lowering it
        # soundly would need closure analysis, so refuse it
        raise self.fail(node, "generator expression")

    def visit_Yield(self, node):
        raise self.fail(node, "yield")

    visit_YieldFrom = visit_Yield
    visit_Await = visit_Yield

    def generic_visit(self, node):
        forbidden = _FORBIDDEN_STMTS.get(type(node))
        if forbidden is not None:
            raise self.fail(node, f"{forbidden!r} statement")
        return super().generic_visit(node)

    # -- driver --------------------------------------------------------
    def _visit_body(self, stmts, parent) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in stmts:
            result = self.visit(stmt)
            if result is None:
                continue
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        if not out:
            out.append(ast.copy_location(ast.Pass(), parent))
        return out

    def _visit_opt_body(self, stmts) -> List[ast.stmt]:
        """Like :meth:`_visit_body` but an empty result is legal
        (``orelse`` suites may vanish entirely)."""
        out: List[ast.stmt] = []
        for stmt in stmts:
            result = self.visit(stmt)
            if result is None:
                continue
            if isinstance(result, list):
                out.extend(result)
            else:
                out.append(result)
        return out

    def lower(self, fndef: ast.FunctionDef, ctx_positions: Tuple[int, ...],
              lowered_name: str) -> ast.FunctionDef:
        args = fndef.args
        if args.vararg or args.kwarg or args.kwonlyargs \
                or args.posonlyargs or args.defaults or args.kw_defaults:
            raise self.fail(fndef, "unsupported parameter kind "
                                   "(defaults/varargs/kw-only)")
        if max(ctx_positions, default=-1) >= len(args.args):
            raise self.fail(fndef, "ctx argument position out of range")
        self.locals = _collect_locals(fndef)
        params = [ast.arg("__rt")] + [
            ast.arg(a.arg) for i, a in enumerate(args.args)
            if i not in ctx_positions]
        body = self._visit_body(fndef.body, fndef)
        new = ast.FunctionDef(
            name=lowered_name,
            args=ast.arguments(posonlyargs=[], args=params, vararg=None,
                               kwonlyargs=[], kw_defaults=[], kwarg=None,
                               defaults=[]),
            body=body, decorator_list=[], returns=None)
        return ast.copy_location(new, fndef)


class LoweringSession:
    """Lowers one kernel plus every helper it (transitively) calls.

    Helpers are memoized per ``(function, ctx argument positions)`` —
    the same helper called with and without ``ctx`` lowers twice, once
    per calling convention.
    """

    def __init__(self, np_shim) -> None:
        self.np_shim = np_shim
        self.sync_points = 0
        self.lowered_ops = 0
        self.uses_numpy_shim = False
        self._done: Dict[Tuple[int, Tuple[int, ...]], LoweredFunction] = {}
        self._in_progress: set = set()
        self._counter = 0

    def lower_function(self, fn, ctx_positions: Tuple[int, ...]
                       ) -> LoweredFunction:
        key = (id(fn), ctx_positions)
        hit = self._done.get(key)
        if hit is not None:
            return hit
        if key in self._in_progress:
            raise CompileError(
                f"recursive call cycle through {fn.__name__!r}")
        self._in_progress.add(key)
        try:
            lowered = self._lower(fn, ctx_positions)
        finally:
            self._in_progress.discard(key)
        self._done[key] = lowered
        return lowered

    @property
    def helper_count(self) -> int:
        return max(0, len(self._done) - 1)

    def _lower(self, fn, ctx_positions: Tuple[int, ...]) -> LoweredFunction:
        try:
            source = textwrap.dedent(inspect.getsource(fn))
        except (OSError, TypeError) as exc:
            raise CompileError(
                f"source of {fn.__name__!r} unavailable: {exc}") from None
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:     # pragma: no cover - getsource quirk
            raise CompileError(
                f"cannot re-parse {fn.__name__!r}: {exc}") from None
        if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
            raise CompileError(
                f"{fn.__name__!r} is not a plain function definition")
        fndef = tree.body[0]
        fndef.decorator_list = []

        env = dict(fn.__globals__)
        if fn.__closure__:
            env.update(zip(fn.__code__.co_freevars,
                           (c.cell_contents for c in fn.__closure__)))
        ctx_names = frozenset(
            fndef.args.args[i].arg for i in ctx_positions
            if i < len(fndef.args.args))

        self._counter += 1
        lowered_name = f"__grid_{fn.__name__}_{self._counter}"
        bindings: Dict[str, object] = {"__builtins__": builtins}
        lowerer = _FunctionLowerer(self, fn, ctx_names, env, bindings)
        if len(self._in_progress) == 1:
            # root kernel entry only: launch arguments are grid
            # constants, so the R8 dataflow's UNIFORM parameter seed is
            # sound.  Helpers may receive per-lane arguments and keep
            # the conservative refusal.
            from ..analysis.divergence import uniform_mask_lines
            lowerer.uniform_lines = uniform_mask_lines(fn)
        new_def = lowerer.lower(fndef, ctx_positions, lowered_name)
        module = ast.Module(body=[new_def], type_ignores=[])
        ast.fix_missing_locations(module)
        code = compile(module, filename=f"<lowered {fn.__name__}>",
                       mode="exec")
        exec(code, bindings)
        return LoweredFunction(
            name=lowered_name, callable=bindings[lowered_name],
            source=ast.unparse(new_def))
