"""Compiled-program construction and caching.

A :class:`CompiledProgram` is the AOT artifact for one kernel: a
single Python function ``entry(__rt, *args)`` over a
:class:`~repro.compile.runtime.GridRT` that executes every lane of a
block range in one shot.  Programs (and compile *failures*) are
cached per kernel function object, so repeated launches — including
launches of fresh :func:`build_kernel` closures — pay the AST pass at
most once per kernel object.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional, Tuple

from ..cuda.launch import Kernel
from ..obs.registry import get_registry
from .lower import CompileError, LoweringSession
from .runtime import NP_SHIM, GridPrelude, prelude_for

__all__ = ["CompiledProgram", "compile_kernel", "get_program",
           "compile_status", "executable_for", "clear_program_cache",
           "plan_context"]


@dataclass(frozen=True)
class CompiledProgram:
    """AOT artifact for one kernel."""

    kernel_name: str
    entry: object          # callable(__rt, *launch_args)
    source: str            # unparsed lowered kernel (debug aid)
    sync_points: int       # barriers deleted during lowering
    lowered_ops: int       # ctx.* call sites rewritten to __rt.*
    helpers: int           # transitively lowered helper functions


#: fn -> CompiledProgram | CompileError.  Keyed on the *function*
#: object (kernels are frozen dataclasses wrapping fn); weak keys let
#: throwaway build_kernel closures be collected along with their
#: programs.
_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def compile_kernel(kernel: Kernel) -> CompiledProgram:
    """Lower ``kernel`` to a whole-grid program (uncached).

    Raises :class:`CompileError` for kernels outside the supported
    construct set, and for kernels declared ``batchable=False`` —
    whole-grid execution reorders lanes exactly the way the batched
    interpreter does, so the batchable contract is the correctness
    gate for compilation too.
    """
    if not kernel.batchable:
        raise CompileError(
            f"kernel {kernel.name!r} is declared batchable=False "
            f"(order-sensitive); whole-grid lowering would reorder "
            f"its effects")
    session = LoweringSession(NP_SHIM)
    lowered = session.lower_function(kernel.fn, ctx_positions=(0,))
    return CompiledProgram(
        kernel_name=kernel.name,
        entry=lowered.callable,
        source=lowered.source,
        sync_points=session.sync_points,
        lowered_ops=session.lowered_ops,
        helpers=session.helper_count)


def get_program(kernel: Kernel,
                context: Optional[Tuple[str, Tuple]] = None
                ) -> CompiledProgram:
    """Cached :func:`compile_kernel`; failures are cached too.

    ``context`` is an optional ``(device name, arg signature)`` pair
    from a concrete launch plan.  When an artifact cache is active
    (:func:`repro.compile.artifact.active_artifact_cache`), a memory
    miss with context first tries the on-disk artifact keyed by
    ``(kernel source hash, device, signature, compiler version)`` —
    the cold-process path that skips lowering entirely — and a fresh
    compile is written back for the next process.
    """
    cached = _PROGRAMS.get(kernel.fn)
    if isinstance(cached, CompileError):
        # a previously-recorded refusal: the negative cache answered
        registry = get_registry()
        if registry.enabled:
            registry.counter("compile.negative_cache_hits",
                             kernel=kernel.name).inc()
        raise cached
    if cached is None:
        from .artifact import active_artifact_cache
        disk = active_artifact_cache()
        if disk is not None and context is not None:
            cached = disk.load(kernel, *context)
        if cached is None:
            try:
                cached = compile_kernel(kernel)
                if disk is not None and context is not None:
                    disk.store(kernel, cached, *context)
            except CompileError as exc:
                cached = exc
        try:
            _PROGRAMS[kernel.fn] = cached
        except TypeError:          # unweakrefable callable: skip cache
            pass
    if isinstance(cached, CompileError):
        raise cached
    return cached


def compile_status(kernel: Kernel,
                   context: Optional[Tuple[str, Tuple]] = None
                   ) -> Tuple[bool, str]:
    """Non-raising probe: ``(ok, reason)``; reason empty on success."""
    try:
        get_program(kernel, context)
    except CompileError as exc:
        return False, str(exc)
    return True, ""


def executable_for(plan) -> Tuple[CompiledProgram, GridPrelude]:
    """Program plus the (cached) grid prelude for one launch plan."""
    return (get_program(plan.kernel, plan_context(plan)),
            prelude_for(plan.grid, plan.block))


def plan_context(plan) -> Tuple[str, Tuple]:
    """The artifact-cache context of one launch plan."""
    return (plan.spec.name, plan.arg_signature())


def clear_program_cache() -> None:
    """Drop every cached program and failure (tests use this)."""
    _PROGRAMS.clear()
