"""On-disk artifact cache for compiled grid programs.

A :class:`CompiledProgram` is ordinary Python: a handful of function
objects produced by ``exec`` of lowered ASTs, each with a private
globals dict holding its constant bindings and helper callables.  That
makes the whole program serializable with the standard library —
``marshal`` for the code objects, ``pickle`` for the constant
bindings — so a cold process can skip lowering (source fetch, AST
rewrite, the R8 uniformity dataflow, ``compile``) entirely and
rebuild the program from bytes.

Cache key
    ``sha256(kernel name, device name, arg signature, compiler
    version, python version)`` names the file; the kernel's *source
    fingerprint* (entry source + closure cell values, including the
    sources of function-valued cells) is stored inside the artifact
    and checked on load.  A fingerprint mismatch means the kernel
    changed since the artifact was written: the stale file is deleted,
    the ``artifact.invalidated`` counter bumps, and the kernel is
    recompiled (and re-cached).  Unreadable files are treated the same
    way (``artifact.corrupt``).

Activation
    :func:`active_artifact_cache` returns the process-wide cache: the
    one installed programmatically (:func:`install_artifact_cache` /
    :func:`use_artifact_cache`) or, failing that, the directory named
    by the ``REPRO_AOT_CACHE`` environment variable.  With no cache
    active, :func:`repro.compile.get_program` behaves exactly as
    before (in-memory memoization only).
"""

from __future__ import annotations

import contextlib
import hashlib
import inspect
import marshal
import os
import pickle
import sys
import types
from collections import Counter
from typing import Dict, Optional, Tuple

from .lower import CompileError
from .program import CompiledProgram

__all__ = ["ArtifactCache", "COMPILER_VERSION", "active_artifact_cache",
           "artifact_key", "install_artifact_cache", "kernel_fingerprint",
           "use_artifact_cache"]

#: bump when the lowering or the artifact layout changes shape — old
#: artifacts become unreachable (different file names) rather than
#: wrongly loaded
COMPILER_VERSION = 1

#: serialized payload layout version (checked on load)
_FORMAT = 1


def kernel_fingerprint(kernel) -> str:
    """Content hash of everything that determines the lowered program:
    the kernel function's source plus its closure cell values (kernel
    factories like ``lbm_step_kernel(layout)`` share one source but
    close over different constants).  Function-valued cells contribute
    their own source.  Raises :class:`CompileError` when the source is
    unavailable (interactively defined kernels are not cacheable)."""
    fn = kernel.fn
    h = hashlib.sha256()
    try:
        h.update(inspect.getsource(fn).encode())
    except (OSError, TypeError) as exc:
        raise CompileError(
            f"source of {fn.__name__!r} unavailable: {exc}") from None
    if fn.__closure__:
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            value = cell.cell_contents
            if isinstance(value, types.FunctionType):
                try:
                    part = inspect.getsource(value)
                except (OSError, TypeError):
                    part = repr(value.__code__.co_code)
            else:
                part = repr(value)
            h.update(f"{name}={part}\n".encode())
    return h.hexdigest()


def artifact_key(kernel, device_name: str = "",
                 signature: Tuple = ()) -> str:
    """File-name key: kernel identity + launch context + toolchain.

    The source fingerprint deliberately stays *out* of the key (and
    *inside* the payload) so an edited kernel maps to the same file —
    that is what makes staleness detectable as an invalidation rather
    than a silent miss.
    """
    h = hashlib.sha256()
    h.update(repr((kernel.name, device_name, signature,
                   COMPILER_VERSION, sys.version_info[:2])).encode())
    return h.hexdigest()[:32]


def _encode_const(value):
    """Modules pickle by reference only through importlib — encode them
    as names.  Everything else in ``_CONST_TYPES`` pickles directly."""
    if isinstance(value, types.ModuleType):
        return ("__module__", value.__name__)
    return ("__value__", value)


def _decode_const(tagged):
    tag, payload = tagged
    if tag == "__module__":
        import importlib
        return importlib.import_module(payload)
    return payload


def _dump_program(program: CompiledProgram) -> bytes:
    """Serialize a program: per-function marshalled code + pickled
    constant bindings + helper wiring."""
    functions: Dict[str, dict] = {}

    def visit(fn) -> None:
        name = fn.__name__
        if name in functions:
            return
        consts = {}
        helpers = []
        for key, value in fn.__globals__.items():
            if key in ("__builtins__", "__np") or key == name:
                continue
            if isinstance(value, types.FunctionType):
                helpers.append(key)
            else:
                consts[key] = _encode_const(value)
        functions[name] = {
            "code": marshal.dumps(fn.__code__),
            "consts": consts,
            "helpers": helpers,
            "uses_np": "__np" in fn.__globals__,
        }
        for key in helpers:
            visit(fn.__globals__[key])

    visit(program.entry)
    payload = {
        "format": _FORMAT,
        "python": sys.version_info[:2],
        "compiler": COMPILER_VERSION,
        "kernel_name": program.kernel_name,
        "entry": program.entry.__name__,
        "source": program.source,
        "sync_points": program.sync_points,
        "lowered_ops": program.lowered_ops,
        "helpers": program.helpers,
        "functions": functions,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _load_program(payload: dict) -> CompiledProgram:
    """Rebuild a program from a :func:`_dump_program` payload."""
    from .runtime import NP_SHIM
    import builtins
    if payload.get("format") != _FORMAT \
            or tuple(payload.get("python", ())) != sys.version_info[:2] \
            or payload.get("compiler") != COMPILER_VERSION:
        raise ValueError("artifact toolchain mismatch")
    fns: Dict[str, types.FunctionType] = {}
    for name, rec in payload["functions"].items():
        bindings: Dict[str, object] = {"__builtins__": builtins}
        if rec["uses_np"]:
            bindings["__np"] = NP_SHIM
        for key, tagged in rec["consts"].items():
            bindings[key] = _decode_const(tagged)
        fn = types.FunctionType(marshal.loads(rec["code"]), bindings, name)
        bindings[name] = fn
        fns[name] = fn
    for name, rec in payload["functions"].items():
        for helper in rec["helpers"]:
            fns[name].__globals__[helper] = fns[helper]
    return CompiledProgram(
        kernel_name=payload["kernel_name"],
        entry=fns[payload["entry"]],
        source=payload["source"],
        sync_points=payload["sync_points"],
        lowered_ops=payload["lowered_ops"],
        helpers=payload["helpers"])


class ArtifactCache:
    """Directory of serialized :class:`CompiledProgram` artifacts.

    ``stats`` counts hits/misses/writes/invalidations locally (always,
    so tests need no registry); the same events feed the ambient
    metrics registry as ``artifact.*`` counters when it is enabled.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.stats: Counter = Counter()

    # -- paths ---------------------------------------------------------
    def path_for(self, kernel, device_name: str = "",
                 signature: Tuple = ()) -> str:
        return os.path.join(
            self.root, artifact_key(kernel, device_name, signature) + ".aot")

    def _count(self, event: str, kernel_name: str) -> None:
        self.stats[event] += 1
        from ..obs.registry import get_registry
        registry = get_registry()
        if registry.enabled:
            registry.counter(f"artifact.{event}",
                             kernel=kernel_name).inc()

    # -- store ---------------------------------------------------------
    def store(self, kernel, program: CompiledProgram,
              device_name: str = "", signature: Tuple = ()) -> bool:
        """Write one artifact (atomic rename); returns False when the
        kernel or one of its constants is unserializable."""
        try:
            fingerprint = kernel_fingerprint(kernel)
            blob = pickle.dumps(
                {"fingerprint": fingerprint,
                 "program": _dump_program(program)},
                protocol=pickle.HIGHEST_PROTOCOL)
        except (CompileError, ValueError, TypeError, pickle.PicklingError,
                AttributeError):
            self._count("unserializable", kernel.name)
            return False
        path = self.path_for(kernel, device_name, signature)
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        self._count("writes", kernel.name)
        return True

    # -- load ----------------------------------------------------------
    def load(self, kernel, device_name: str = "",
             signature: Tuple = ()) -> Optional[CompiledProgram]:
        """Load one artifact; ``None`` on miss, corruption or staleness
        (the latter two delete the bad file so the rewrite is clean)."""
        path = self.path_for(kernel, device_name, signature)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self._count("misses", kernel.name)
            return None
        try:
            wrapper = pickle.loads(blob)
            fingerprint = wrapper["fingerprint"]
            current = kernel_fingerprint(kernel)
        except Exception:
            self._count("corrupt", kernel.name)
            self._discard(path)
            return None
        if fingerprint != current:
            self._count("invalidated", kernel.name)
            self._discard(path)
            return None
        try:
            program = _load_program(pickle.loads(wrapper["program"]))
        except Exception:
            self._count("corrupt", kernel.name)
            self._discard(path)
            return None
        self._count("cold_hits", kernel.name)
        return program

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------

_ACTIVE: Optional[ArtifactCache] = None
_INSTALLED = False       # programmatic install overrides the env var


def active_artifact_cache() -> Optional[ArtifactCache]:
    """The installed cache, else one rooted at ``$REPRO_AOT_CACHE``."""
    global _ACTIVE
    if _INSTALLED:
        return _ACTIVE
    root = os.environ.get("REPRO_AOT_CACHE")
    if not root:
        return None
    if _ACTIVE is None or _ACTIVE.root != root:
        _ACTIVE = ArtifactCache(root)
    return _ACTIVE


def install_artifact_cache(cache: Optional[ArtifactCache]
                           ) -> Optional[ArtifactCache]:
    """Install (or, with ``None``, clear back to env-var behaviour)
    the process-wide artifact cache; returns the previous one."""
    global _ACTIVE, _INSTALLED
    previous = _ACTIVE if _INSTALLED else None
    if cache is None:
        _ACTIVE, _INSTALLED = None, False
    else:
        _ACTIVE, _INSTALLED = cache, True
    return previous


@contextlib.contextmanager
def use_artifact_cache(cache: Optional[ArtifactCache]):
    """Scoped :func:`install_artifact_cache` (tests)."""
    global _ACTIVE, _INSTALLED
    prev = (_ACTIVE, _INSTALLED)
    _ACTIVE, _INSTALLED = cache, True
    try:
        yield cache
    finally:
        _ACTIVE, _INSTALLED = prev
